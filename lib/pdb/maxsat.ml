open Consensus_util

type instance = { num_vars : int; clauses : (int * bool) list array }

let make ~num_vars ~clauses =
  Array.iter
    (fun lits ->
      if lits = [] then invalid_arg "Maxsat.make: empty clause";
      List.iter
        (fun (v, _) ->
          if v < 0 || v >= num_vars then invalid_arg "Maxsat.make: variable out of range")
        lits)
    clauses;
  { num_vars; clauses }

let satisfied inst assign =
  Array.fold_left
    (fun acc lits ->
      if List.exists (fun (v, pol) -> assign.(v) = pol) lits then acc + 1 else acc)
    0 inst.clauses

let solve_exact inst =
  if inst.num_vars > 24 then invalid_arg "Maxsat.solve_exact: too many variables";
  let best = ref ([||], -1) in
  let assign = Array.make inst.num_vars false in
  for mask = 0 to (1 lsl inst.num_vars) - 1 do
    for v = 0 to inst.num_vars - 1 do
      assign.(v) <- mask land (1 lsl v) <> 0
    done;
    let s = satisfied inst assign in
    if s > snd !best then best := (Array.copy assign, s)
  done;
  !best

let solve_greedy rng ?(restarts = 10) inst =
  let best = ref ([||], -1) in
  for _ = 1 to restarts do
    let assign = Array.init inst.num_vars (fun _ -> Prng.bool rng) in
    let improved = ref true in
    while !improved do
      improved := false;
      for v = 0 to inst.num_vars - 1 do
        let before = satisfied inst assign in
        assign.(v) <- not assign.(v);
        if satisfied inst assign <= before then assign.(v) <- not assign.(v)
        else improved := true
      done
    done;
    let s = satisfied inst assign in
    if s > snd !best then best := (Array.copy assign, s)
  done;
  !best

type gadget = {
  registry : Lineage.Registry.r;
  s : Relation.t;
  r : Relation.t;
  answer : Relation.t;
}

let build_gadget inst =
  let registry = Lineage.Registry.create () in
  let s_blocks =
    List.init inst.num_vars (fun v ->
        [
          (([| Value.Int v; Value.Bool false |] : Relation.tuple), 0.5);
          (([| Value.Int v; Value.Bool true |] : Relation.tuple), 0.5);
        ])
  in
  let s = Relation.of_bid registry [ "x"; "b" ] s_blocks in
  let r_rows =
    Array.to_list inst.clauses
    |> List.mapi (fun c lits ->
           List.map
             (fun (v, pol) ->
               ([| Value.Int c; Value.Int v; Value.Bool pol |] : Relation.tuple))
             lits)
    |> List.concat
  in
  let r = Relation.certain [ "c"; "x"; "b" ] r_rows in
  let joined = Algebra.join ~on:[ ("x", "x"); ("b", "b") ] r s in
  let answer = Algebra.project [ "c" ] joined in
  { registry; s; r; answer }

let answer_probabilities g =
  Relation.probabilities g.registry g.answer
  |> List.map (fun (t, p) -> (Value.as_int t.(0), p))
  |> List.sort compare

let median_world_size inst = snd (solve_exact inst)
