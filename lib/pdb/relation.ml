type tuple = Value.t array

type t = { schema : string list; rows : (tuple * Lineage.t) list }

let check_unique schema =
  if List.length (List.sort_uniq compare schema) <> List.length schema then
    invalid_arg "Relation: duplicate attribute names"

let create schema rows =
  check_unique schema;
  let width = List.length schema in
  List.iter
    (fun ((t : tuple), _) ->
      if Array.length t <> width then
        invalid_arg "Relation.create: tuple width does not match schema")
    rows;
  { schema; rows }

let certain schema tuples =
  create schema (List.map (fun t -> (t, Lineage.True)) tuples)

let of_independent reg schema rows =
  create schema
    (List.map
       (fun (t, p) -> (t, Lineage.Var (Lineage.Registry.fresh reg p)))
       rows)

let of_bid reg schema blocks =
  let rows =
    List.concat_map
      (fun block ->
        let vars = Lineage.Registry.fresh_block reg (List.map snd block) in
        List.map2 (fun (t, _) v -> (t, Lineage.Var v)) block vars)
      blocks
  in
  create schema rows

let schema r = r.schema
let arity r = List.length r.schema
let cardinality r = List.length r.rows
let rows r = r.rows

let column r name =
  let rec go i = function
    | [] -> invalid_arg (Printf.sprintf "Relation.column: no attribute %s" name)
    | a :: rest -> if a = name then i else go (i + 1) rest
  in
  go 0 r.schema

let attr r name t = t.(column r name)

let probabilities reg r =
  List.map (fun (t, l) -> (t, Inference.probability reg l)) r.rows

let pp ppf r =
  Format.fprintf ppf "%s@." (String.concat " | " r.schema);
  List.iter
    (fun (t, l) ->
      Format.fprintf ppf "%s   [%a]@."
        (Array.to_list t |> List.map Value.to_string |> String.concat " | ")
        Lineage.pp l)
    r.rows
