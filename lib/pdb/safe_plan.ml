module Obs = Consensus_obs.Obs

type atom = { relation : string; vars : string list }
type query = atom list

type plan =
  | Scan of string
  | Independent_join of plan list
  | Independent_project of string * plan

module SS = Set.Make (String)

let query_vars q =
  List.fold_left (fun acc a -> SS.union acc (SS.of_list a.vars)) SS.empty q

let atoms_of_var q x = List.filter (fun a -> List.mem x a.vars) q

let distinct_relations q =
  let names = List.map (fun a -> a.relation) q in
  List.length (List.sort_uniq compare names) = List.length names

let is_hierarchical q =
  let vars = SS.elements (query_vars q) in
  let sg x = List.map (fun a -> a.relation) (atoms_of_var q x) |> SS.of_list in
  List.for_all
    (fun x ->
      List.for_all
        (fun y ->
          let sx = sg x and sy = sg y in
          SS.subset sx sy || SS.subset sy sx || SS.is_empty (SS.inter sx sy))
        vars)
    vars

(* Connected components of atoms linked by shared variables. *)
let components q =
  let rec grow comp vars rest =
    let more, rest =
      List.partition
        (fun a -> List.exists (fun v -> SS.mem v vars) a.vars)
        rest
    in
    if more = [] then (comp, rest)
    else
      grow (comp @ more)
        (List.fold_left (fun acc a -> SS.union acc (SS.of_list a.vars)) vars more)
        rest
  in
  let rec go = function
    | [] -> []
    | a :: rest ->
        let comp, rest = grow [ a ] (SS.of_list a.vars) rest in
        comp :: go rest
  in
  go q

let rec plan q =
  if q = [] then Error "empty query"
  else if not (distinct_relations q) then
    Error "self-joins are not supported by the safe-plan synthesis"
  else
    match components q with
    | [] -> Error "empty query"
    | [ comp ] -> plan_connected comp
    | comps -> (
        let sub = List.map plan comps in
        match
          List.fold_right
            (fun p acc ->
              match (p, acc) with
              | Ok p, Ok ps -> Ok (p :: ps)
              | (Error _ as e), _ -> e
              | _, (Error _ as e) -> e)
            sub (Ok [])
        with
        | Ok ps -> Ok (Independent_join ps)
        | Error _ as e -> e)

and plan_connected comp =
  match comp with
  | [ { relation; vars = [] } ] -> Ok (Scan relation)
  | _ -> (
      (* A root variable occurs in every atom of the connected component. *)
      let vars = SS.elements (query_vars comp) in
      let root =
        List.find_opt
          (fun x -> List.for_all (fun a -> List.mem x a.vars) comp)
          vars
      in
      match root with
      | None -> Error "query is not hierarchical: no root variable in a connected component"
      | Some x -> (
          let without_x =
            List.map
              (fun a -> { a with vars = List.filter (fun v -> v <> x) a.vars })
              comp
          in
          match plan without_x with
          | Ok p -> Ok (Independent_project (x, p))
          | Error _ as e -> e))

let rec pp_plan ppf = function
  | Scan r -> Format.fprintf ppf "scan(%s)" r
  | Independent_join ps ->
      Format.fprintf ppf "@[<hov 2>⋈ⁱ(%a)@]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp_plan)
        ps
  | Independent_project (x, p) ->
      Format.fprintf ppf "@[<hov 2>πⁱ_%s(%a)@]" x pp_plan p

type instance = (string * Relation.t) list

let lookup_relation instance name =
  match List.assoc_opt name instance with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "Safe_plan: relation %s not in instance" name)

let check_arity instance q =
  List.iter
    (fun a ->
      let r = lookup_relation instance a.relation in
      if List.length a.vars <> Relation.arity r then
        invalid_arg
          (Printf.sprintf "Safe_plan: atom %s has %d vars but relation has arity %d"
             a.relation (List.length a.vars) (Relation.arity r)))
    q

(* Rows of an atom's relation compatible with the current variable binding,
   together with the residual binding extension. *)
let matching_rows instance binding a =
  let r = lookup_relation instance a.relation in
  List.filter_map
    (fun ((t : Relation.tuple), l) ->
      let rec unify i vars acc =
        match vars with
        | [] -> Some acc
        | v :: rest -> (
            match List.assoc_opt v acc with
            | Some value ->
                if Value.equal value t.(i) then unify (i + 1) rest acc else None
            | None -> unify (i + 1) rest ((v, t.(i)) :: acc))
      in
      match unify 0 a.vars binding with
      | Some extended -> Some (t, l, extended)
      | None -> None)
    (Relation.rows r)

(* Domain of variable x under a binding: values appearing in x's column of
   every atom containing x (intersection would be tighter; union is sound
   because non-joining values evaluate to probability 0). *)
let domain instance binding q x =
  List.concat_map
    (fun a ->
      let idx =
        let rec find i = function
          | [] -> assert false
          | v :: _ when v = x -> i
          | _ :: rest -> find (i + 1) rest
        in
        find 0 a.vars
      in
      matching_rows instance binding a |> List.map (fun (t, _, _) -> t.(idx)))
    (atoms_of_var q x)
  |> List.sort_uniq Value.compare

let eval_extensional reg instance q =
  check_arity instance q;
  Obs.with_span
    ~attrs:(fun () -> [ ("atoms", Obs.Int (List.length q)) ])
    "pdb.safe_plan.eval_extensional"
  @@ fun () ->
  match plan q with
  | Error _ as e -> e
  | Ok _ ->
      let row_prob l = Inference.probability reg l in
      (* Recursion state: the variable binding.  Components and root
         variables are computed over the *free* (unbound) variables; bound
         variables only filter rows via [matching_rows]. *)
      let rec eval binding q =
        let free a = List.filter (fun v -> not (List.mem_assoc v binding)) a.vars in
        (* connected components linked by shared free variables *)
        let rec grow comp vars rest =
          let more, rest =
            List.partition (fun a -> List.exists (fun v -> SS.mem v vars) (free a)) rest
          in
          if more = [] then (comp, rest)
          else
            grow (comp @ more)
              (List.fold_left (fun acc a -> SS.union acc (SS.of_list (free a))) vars more)
              rest
        in
        let rec split = function
          | [] -> []
          | a :: rest ->
              let comp, rest = grow [ a ] (SS.of_list (free a)) rest in
              comp :: split rest
        in
        List.fold_left
          (fun acc comp -> acc *. eval_connected binding comp)
          1. (split q)
      and eval_connected binding comp =
        let free a = List.filter (fun v -> not (List.mem_assoc v binding)) a.vars in
        let frees =
          List.fold_left (fun acc a -> SS.union acc (SS.of_list (free a))) SS.empty comp
        in
        if SS.is_empty frees then
          (* every atom contributes an independent OR over its matches *)
          List.fold_left
            (fun acc a ->
              let rows = matching_rows instance binding a in
              let none =
                List.fold_left (fun m (_, l, _) -> m *. (1. -. row_prob l)) 1. rows
              in
              acc *. (1. -. none))
            1. comp
        else begin
          (* root free variable: occurs in every atom of the component *)
          let x =
            match
              SS.elements frees
              |> List.find_opt (fun x ->
                     List.for_all (fun a -> List.mem x (free a)) comp)
            with
            | Some x -> x
            | None ->
                (* plan q succeeded, so this cannot happen *)
                assert false
          in
          (* distinct x-values touch disjoint tuples of every atom, so the
             per-value events are independent *)
          let none =
            List.fold_left
              (fun m value -> m *. (1. -. eval ((x, value) :: binding) comp))
              1.
              (domain instance binding comp x)
          in
          1. -. none
        end
      in
      Ok (eval [] q)

let lineage instance q =
  check_arity instance q;
  Obs.with_span
    ~attrs:(fun () -> [ ("atoms", Obs.Int (List.length q)) ])
    "pdb.safe_plan.lineage"
  @@ fun () ->
  (* Or over all homomorphisms of the And of matched row lineages. *)
  let rec go binding atoms acc_lineage =
    match atoms with
    | [] -> [ Lineage.And (List.rev acc_lineage) ]
    | a :: rest ->
        matching_rows instance binding a
        |> List.concat_map (fun (_, l, binding') ->
               go binding' rest (l :: acc_lineage))
  in
  Lineage.simplify (Lineage.Or (go [] q []))

let eval_intensional reg instance q =
  Inference.probability reg (lineage instance q)
