(** Bridging relations to the group-by count consensus of §6.1.

    The paper's aggregate model is an attribute-uncertain relation: every
    logical tuple is present, its group attribute is distributed over [m]
    groups.  In the relational layer this is a BID table whose blocks have
    total probability 1; {!groupby_matrix} extracts the paper's [n × m]
    probability matrix from such a relation (feed it to
    [Consensus.Aggregate_consensus]).

    {!count_distribution} gives the exact distribution of an answer's
    cardinality for literal-lineage relations — the generating function of
    §3.3 applied to lineage blocks. *)

val groupby_matrix :
  Lineage.Registry.r ->
  Relation.t ->
  key:string ->
  group:string ->
  Value.t array * float array array
(** [groupby_matrix reg rel ~key ~group] returns the distinct group values
    (column order) and the row-stochastic matrix: row = logical tuple
    (distinct [key] value), column = group value, entry = probability.
    Requires every row's lineage to be a literal event and each key's rows
    to form one mutually exclusive block of total probability ≈ 1;
    raises [Invalid_argument] otherwise. *)

val count_distribution : Lineage.Registry.r -> Relation.t -> Consensus_poly.Poly1.t
(** Exact distribution of the number of present rows, for relations whose
    rows all carry {e literal} lineage ([Var v] or [True]): the product of
    one generating-function factor per independent event / BID block.
    Raises [Invalid_argument] on compound lineage (project/join results) —
    use {!count_distribution_mc} there. *)

val count_distribution_mc :
  Consensus_util.Prng.t ->
  samples:int ->
  Lineage.Registry.r ->
  Relation.t ->
  float array
(** Monte-Carlo histogram of the answer cardinality (index = count),
    usable for arbitrary lineage. *)

val expected_count : Lineage.Registry.r -> Relation.t -> float
(** Expected cardinality of the answer: Σ row probabilities (exact for any
    lineage, by linearity). *)
