(* Read-once detection and factorization over lineage formulas.

   A boolean formula is read-once when it is equivalent to a formula in
   which every variable appears exactly once.  For such formulas, exact
   probability collapses to a linear bottom-up product/sum pass over the
   factored tree — no Shannon expansion, no memo table, no #P behaviour.

   The detector implements the Golumbic–Gurvich characterization on the
   minimized DNF (the prime implicants, which for a unate formula are
   exactly the absorption-minimal clauses):

   - build the co-occurrence (primal) graph: one vertex per variable, an
     edge when two variables share a clause;
   - if the graph is disconnected, the formula is the OR of its
     per-component restrictions (every clause is a clique, hence lives in
     one component);
   - if the complement is disconnected (the graph is a join), the formula
     is read-once iff it is *normal* there: the clause set must be exactly
     the cross product of its projections onto the co-components, in which
     case it is the AND of the per-part restrictions;
   - if both the graph and its complement are connected on >= 2 vertices,
     the co-occurrence graph contains an induced P4 (it is not a cograph)
     or normality fails — the formula is not read-once.

   Everything is capped: DNF conversion aborts past [max_clauses], so a
   failed detection costs O(cap) and inference falls back to Shannon
   expansion.  BID blocks are handled soundly: a clause conjoining two
   alternatives of one block is dropped (their conjunction is false), and
   a formula still containing two distinct variables of one block after
   that pruning is rejected — its events are dependent, so the read-once
   product/sum rules do not apply. *)

module VS = Set.Make (Int)

type t =
  | Leaf of { var : Lineage.var; negated : bool }
  | And_ of t list
  | Or_ of t list
  | Const of bool

let default_max_clauses = 4096

(* ---------- DNF of literal sets ----------

   Literals are encoded as [2 * var + polarity] with polarity 1 for a
   negated occurrence.  Negation is pushed down on the fly (De Morgan), so
   [Not] nodes cost nothing extra.  A clause is a literal set; [None] from
   the converter means the clause cap was exceeded. *)

exception Blow
exception Mixed_polarity

let lit_pos v = 2 * v
let lit_neg v = (2 * v) + 1
let lit_var l = l lsr 1
let lit_negated l = l land 1 = 1

(* Conjoin two clauses; [None] when they contradict: a literal and its
   negation, or two positive alternatives of one BID block (mutually
   exclusive events, the conjunction is unsatisfiable). *)
let conjoin reg c1 c2 =
  let contradicts l =
    VS.mem (l lxor 1) c1
    || (not (lit_negated l))
       &&
       match Lineage.Registry.block_of reg (lit_var l) with
       | None -> false
       | Some b ->
           VS.exists
             (fun l' ->
               (not (lit_negated l'))
               && lit_var l' <> lit_var l
               && Lineage.Registry.block_of reg (lit_var l') = Some b)
             c1
  in
  if VS.exists contradicts c2 then None else Some (VS.union c1 c2)

let dnf ~max_clauses reg f =
  let check cs = if List.length cs > max_clauses then raise Blow else cs in
  let rec go neg f =
    match f with
    | Lineage.True -> if neg then [] else [ VS.empty ]
    | Lineage.False -> if neg then [ VS.empty ] else []
    | Lineage.Var v -> [ VS.singleton (if neg then lit_neg v else lit_pos v) ]
    | Lineage.Not g -> go (not neg) g
    | Lineage.And fs -> if neg then disj neg fs else conj neg fs
    | Lineage.Or fs -> if neg then conj neg fs else disj neg fs
  and disj neg fs = check (List.concat_map (go neg) fs)
  and conj neg fs =
    List.fold_left
      (fun acc g ->
        let part = go neg g in
        check
          (List.concat_map
             (fun c1 -> List.filter_map (fun c2 -> conjoin reg c1 c2) part)
             acc))
      [ VS.empty ] fs
  in
  match go false f with cs -> Some cs | exception Blow -> None

(* Minimize: dedupe, then absorb (drop any clause that is a superset of a
   strictly smaller one).  For a unate formula the result is exactly the
   set of prime implicants, which is what the normality check requires.
   Clauses are compared size-first so only strictly smaller clauses can
   absorb — equal-size clauses are distinct after the dedupe. *)
let minimize clauses =
  let sorted =
    List.sort_uniq VS.compare clauses
    |> List.sort (fun a b -> compare (VS.cardinal a) (VS.cardinal b))
  in
  let kept = ref [] in
  List.iter
    (fun c ->
      if not (List.exists (fun small -> VS.subset small c) !kept) then
        kept := c :: !kept)
    sorted;
  List.rev !kept

(* Every variable must occur with a single polarity (a read-once formula
   is unate), and no two distinct variables of one BID block may remain —
   their events are dependent. *)
let check_events reg clauses =
  let polarity = Hashtbl.create 16 and block_rep = Hashtbl.create 16 in
  List.iter
    (VS.iter (fun l ->
         let v = lit_var l in
         (match Hashtbl.find_opt polarity v with
         | None -> Hashtbl.replace polarity v (lit_negated l)
         | Some p -> if p <> lit_negated l then raise Mixed_polarity);
         match Lineage.Registry.block_of reg v with
         | None -> ()
         | Some b -> (
             match Hashtbl.find_opt block_rep b with
             | None -> Hashtbl.replace block_rep b v
             | Some v' -> if v' <> v then raise Mixed_polarity)))
    clauses

(* ---------- cograph decomposition ---------- *)

let clause_vars c = VS.fold (fun l acc -> VS.add (lit_var l) acc) c VS.empty

(* Connected components of [vars] under the co-occurrence relation induced
   by [clauses] (each clause's variables form a clique). *)
let components vars clauses =
  let adj = Hashtbl.create (VS.cardinal vars) in
  let neighbours v = Option.value (Hashtbl.find_opt adj v) ~default:VS.empty in
  List.iter
    (fun c ->
      let cv = clause_vars c in
      VS.iter (fun v -> Hashtbl.replace adj v (VS.union (neighbours v) cv)) cv)
    clauses;
  let rec bfs seen frontier =
    if VS.is_empty frontier then seen
    else
      let next =
        VS.fold (fun v acc -> VS.union acc (neighbours v)) frontier VS.empty
      in
      let seen' = VS.union seen frontier in
      bfs seen' (VS.diff next seen')
  in
  let rec split remaining acc =
    if VS.is_empty remaining then List.rev acc
    else
      let comp = bfs VS.empty (VS.singleton (VS.choose remaining)) in
      split (VS.diff remaining comp) (comp :: acc)
  in
  (split vars [], neighbours)

(* Components of the complement graph, via the unvisited-set trick: the
   complement neighbours of [v] are the still-unvisited vertices not
   adjacent to [v]. *)
let co_components vars neighbours =
  let rec bfs comp frontier remaining =
    if VS.is_empty frontier then (comp, remaining)
    else
      let v = VS.choose frontier in
      let frontier = VS.remove v frontier in
      let adds = VS.diff remaining (neighbours v) in
      bfs (VS.add v comp) (VS.union frontier adds) (VS.diff remaining adds)
  in
  let rec split remaining acc =
    if VS.is_empty remaining then List.rev acc
    else
      let seed = VS.choose remaining in
      let comp, remaining = bfs VS.empty (VS.singleton seed) (VS.remove seed remaining) in
      split remaining (comp :: acc)
  in
  split vars []

let rec build vars clauses =
  match VS.cardinal vars with
  | 0 -> None
  | 1 -> (
      match clauses with
      | [ c ] when VS.cardinal c = 1 ->
          let l = VS.choose c in
          Some (Leaf { var = lit_var l; negated = lit_negated l })
      | _ -> None)
  | _ -> (
      let comps, neighbours = components vars clauses in
      match comps with
      | [] -> None
      | _ :: _ :: _ ->
          (* Disconnected: OR of the per-component restrictions.  A clause
             is a clique, so it lies entirely in one component. *)
          let parts =
            List.map
              (fun comp ->
                let cs =
                  List.filter (fun c -> VS.mem (lit_var (VS.choose c)) comp) clauses
                in
                build comp cs)
              comps
          in
          if List.for_all Option.is_some parts then
            Some (Or_ (List.map Option.get parts))
          else None
      | [ _ ] -> (
          match co_components vars neighbours with
          | [] | [ _ ] -> None (* connected graph and complement: P4 inside *)
          | parts ->
              (* Join: candidate AND decomposition.  Normality: the clause
                 set must be exactly the cross product of its projections
                 onto the parts.  Projections of distinct clauses onto
                 disjoint parts produce distinct unions, so it suffices
                 that (a) every clause meets every part and (b) the clause
                 count equals the product of the deduped projection
                 counts. *)
              let projections =
                List.map
                  (fun part ->
                    let proj =
                      List.map
                        (fun c -> VS.filter (fun l -> VS.mem (lit_var l) part) c)
                        clauses
                    in
                    if List.exists VS.is_empty proj then None
                    else Some (List.sort_uniq VS.compare proj))
                  parts
              in
              if List.exists Option.is_none projections then None
              else
                let projections = List.map Option.get projections in
                let product =
                  List.fold_left (fun acc p -> acc * List.length p) 1 projections
                in
                if product <> List.length clauses then None
                else
                  let subs =
                    List.map2 (fun part proj -> build part proj) parts projections
                  in
                  if List.for_all Option.is_some subs then
                    Some (And_ (List.map Option.get subs))
                  else None))

(* Syntactic fast path: a formula in which every variable already occurs
   exactly once (and no two variables share a BID block) is read-once as
   written — push negation to the leaves and the tree *is* the factored
   form.  This is linear and catches deep by-construction trees whose DNF
   would be exponential; the DNF/cograph path below is for flat lineages
   that need genuine refactoring. *)
exception Not_syntactic

let syntactic reg f =
  let seen_vars = Hashtbl.create 16 and seen_blocks = Hashtbl.create 16 in
  let register v =
    if Hashtbl.mem seen_vars v then raise Not_syntactic;
    Hashtbl.replace seen_vars v ();
    match Lineage.Registry.block_of reg v with
    | None -> ()
    | Some b ->
        if Hashtbl.mem seen_blocks b then raise Not_syntactic;
        Hashtbl.replace seen_blocks b ()
  in
  let rec go neg = function
    | Lineage.True -> Const (not neg)
    | Lineage.False -> Const neg
    | Lineage.Var v ->
        register v;
        Leaf { var = v; negated = neg }
    | Lineage.Not g -> go (not neg) g
    | Lineage.And fs ->
        let ts = List.map (go neg) fs in
        if neg then Or_ ts else And_ ts
    | Lineage.Or fs ->
        let ts = List.map (go neg) fs in
        if neg then And_ ts else Or_ ts
  in
  match go false f with t -> Some t | exception Not_syntactic -> None

let detect ?(max_clauses = default_max_clauses) reg f =
  let f = Lineage.simplify f in
  match syntactic reg f with
  | Some t -> Some t
  | None ->
  match dnf ~max_clauses reg f with
  | None -> None
  | Some clauses -> (
      match minimize clauses with
      | [] -> Some (Const false)
      | [ c ] when VS.is_empty c -> Some (Const true)
      | clauses -> (
          match check_events reg clauses with
          | exception Mixed_polarity -> None
          | () ->
              let vars =
                List.fold_left
                  (fun acc c -> VS.union acc (clause_vars c))
                  VS.empty clauses
              in
              build vars clauses))

(* ---------- compiled form ----------

   The tree flattened into children-before-parent order: one linear pass
   computes every node's probability into a preallocated scratch array.
   After [compile], an [eval] allocates nothing. *)

type compiled = {
  kinds : Bytes.t; (* 0 leaf, 1 and, 2 or, 3 const *)
  args : int array; (* leaf: literal; and/or: child range start; const: 0/1 *)
  stops : int array; (* and/or: child range stop (exclusive) *)
  child_ix : int array; (* node indices, concatenated child ranges *)
  vals : float array; (* scratch, length = node count *)
}

let compile t =
  let rec count = function
    | Leaf _ | Const _ -> 1
    | And_ cs | Or_ cs -> List.fold_left (fun a c -> a + count c) 1 cs
  in
  let n = count t in
  let kinds = Bytes.create n in
  let args = Array.make n 0 and stops = Array.make n 0 in
  let child_buf = ref [] and child_count = ref 0 in
  let next = ref 0 in
  let rec emit t =
    match t with
    | Const b ->
        let i = !next in
        incr next;
        Bytes.set kinds i '\003';
        args.(i) <- (if b then 1 else 0);
        i
    | Leaf { var; negated } ->
        let i = !next in
        incr next;
        Bytes.set kinds i '\000';
        args.(i) <- (2 * var) + (if negated then 1 else 0);
        i
    | And_ cs | Or_ cs ->
        let idxs = List.map emit cs in
        let i = !next in
        incr next;
        Bytes.set kinds i (match t with And_ _ -> '\001' | _ -> '\002');
        args.(i) <- !child_count;
        List.iter
          (fun j ->
            child_buf := j :: !child_buf;
            incr child_count)
          idxs;
        stops.(i) <- !child_count;
        i
  in
  let root = emit t in
  assert (root = n - 1);
  let child_ix = Array.make (max 1 !child_count) 0 in
  List.iteri (fun k j -> child_ix.(!child_count - 1 - k) <- j) !child_buf;
  { kinds; args; stops; child_ix; vals = Array.make n 0. }

let size c = Array.length c.vals

let eval reg c =
  let vals = c.vals and child_ix = c.child_ix in
  let n = Array.length vals in
  for i = 0 to n - 1 do
    match Bytes.unsafe_get c.kinds i with
    | '\000' ->
        let l = c.args.(i) in
        let p = Lineage.Registry.prob reg (l lsr 1) in
        vals.(i) <- (if l land 1 = 1 then 1. -. p else p)
    | '\001' ->
        let rec go j acc =
          if j >= c.stops.(i) then acc else go (j + 1) (acc *. vals.(child_ix.(j)))
        in
        vals.(i) <- go c.args.(i) 1.
    | '\002' ->
        let rec go j acc =
          if j >= c.stops.(i) then acc
          else go (j + 1) (acc *. (1. -. vals.(child_ix.(j))))
        in
        vals.(i) <- 1. -. go c.args.(i) 1.
    | _ -> vals.(i) <- float_of_int c.args.(i)
  done;
  vals.(n - 1)

let factor ?max_clauses reg f =
  Option.map compile (detect ?max_clauses reg f)

let probability ?max_clauses reg f =
  Option.map (eval reg) (factor ?max_clauses reg f)

let rec pp ppf = function
  | Const b -> Format.pp_print_string ppf (if b then "⊤" else "⊥")
  | Leaf { var; negated } ->
      Format.fprintf ppf "%sx%d" (if negated then "¬" else "") var
  | And_ cs ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ∧ ")
           pp)
        cs
  | Or_ cs ->
      Format.fprintf ppf "(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ∨ ")
           pp)
        cs

let to_string t = Format.asprintf "%a" pp t
