(** Hopcroft–Karp maximum-cardinality bipartite matching in O(E √V).

    Used for r-matching feasibility checks in the group-by aggregate
    experiments (§6.1): a vector [r] is a possible answer iff the bipartite
    graph of tuples and (group, slot) pairs admits a perfect matching on the
    tuple side. *)

val max_matching : n_left:int -> n_right:int -> (int * int) list -> int array
(** [max_matching ~n_left ~n_right edges] returns [match_left] with
    [match_left.(u)] the right vertex matched to [u], or [-1].  Edges are
    (left, right) pairs. *)

val matching_size : int array -> int
(** Number of matched left vertices. *)

val is_perfect_left : int array -> bool
(** True iff every left vertex is matched. *)
