module Obs = Consensus_obs.Obs

let solve_seconds =
  Obs.Histogram.make ~help:"Wall time of one Hungarian assignment solve"
    "matching_hungarian_seconds"

let solves =
  Obs.Counter.make ~help:"Hungarian assignment solves" "matching_hungarian_solves_total"

let minimize cost =
  let n = Array.length cost in
  let m = if n = 0 then 0 else Array.length cost.(0) in
  Obs.Counter.incr solves;
  Obs.Histogram.time solve_seconds @@ fun () ->
  Obs.with_span
    ~attrs:(fun () ->
      [ ("rows", Obs.Int n); ("cols", Obs.Int m); ("cells", Obs.Int (n * m)) ])
    "matching.hungarian"
  @@ fun () ->
  if n = 0 then ([||], 0.)
  else begin
    if n > m then invalid_arg "Hungarian.minimize: more rows than columns";
    Array.iter
      (fun row ->
        if Array.length row <> m then
          invalid_arg "Hungarian.minimize: ragged cost matrix";
        Array.iter
          (fun c ->
            if not (Float.is_finite c) then
              invalid_arg "Hungarian.minimize: non-finite cost")
          row)
      cost;
    (* 1-based arrays in the classic formulation: p.(j) is the row matched to
       column j (0 = free); u, v are the dual potentials. *)
    let u = Array.make (n + 1) 0. in
    let v = Array.make (m + 1) 0. in
    let p = Array.make (m + 1) 0 in
    let way = Array.make (m + 1) 0 in
    for i = 1 to n do
      p.(0) <- i;
      let j0 = ref 0 in
      let minv = Array.make (m + 1) infinity in
      let used = Array.make (m + 1) false in
      let continue = ref true in
      while !continue do
        used.(!j0) <- true;
        let i0 = p.(!j0) in
        let delta = ref infinity in
        let j1 = ref 0 in
        for j = 1 to m do
          if not used.(j) then begin
            let cur = cost.(i0 - 1).(j - 1) -. u.(i0) -. v.(j) in
            if cur < minv.(j) then begin
              minv.(j) <- cur;
              way.(j) <- !j0
            end;
            if minv.(j) < !delta then begin
              delta := minv.(j);
              j1 := j
            end
          end
        done;
        for j = 0 to m do
          if used.(j) then begin
            u.(p.(j)) <- u.(p.(j)) +. !delta;
            v.(j) <- v.(j) -. !delta
          end
          else minv.(j) <- minv.(j) -. !delta
        done;
        j0 := !j1;
        if p.(!j0) = 0 then continue := false
      done;
      (* Unwind the augmenting path. *)
      let j0 = ref !j0 in
      while !j0 <> 0 do
        let j1 = way.(!j0) in
        p.(!j0) <- p.(j1);
        j0 := j1
      done
    done;
    let assignment = Array.make n (-1) in
    for j = 1 to m do
      if p.(j) > 0 then assignment.(p.(j) - 1) <- j - 1
    done;
    let total =
      Array.to_list assignment
      |> List.mapi (fun i j -> cost.(i).(j))
      |> List.fold_left ( +. ) 0.
    in
    (assignment, total)
  end

let maximize profit =
  let cost = Array.map (Array.map (fun c -> -.c)) profit in
  let assignment, total = minimize cost in
  (assignment, -.total)

let minimize_square = minimize
