(** Minimum-cost flow (successive shortest augmenting paths with SPFA),
    with support for edge lower bounds.

    The median group-by aggregate answer (paper Theorem 5) reduces to a
    min-cost integral flow on a network whose [e1] edges carry a fixed flow
    (lower bound = upper bound); {!solve_bounded} implements the standard
    excess/deficit reduction for that case.

    Negative edge costs are accepted as long as the graph of forward edges
    has no directed cycle of negative total cost (the networks built in this
    repository are layered DAGs, so any negative costs are safe). *)

type t
(** A mutable flow network. *)

type edge_id = int
(** Handle returned by {!add_edge}, usable with {!flow_on} after solving. *)

val create : int -> t
(** [create n] makes an empty network with nodes [0 .. n-1]. *)

val num_nodes : t -> int

val add_edge : t -> src:int -> dst:int -> cap:int -> cost:float -> edge_id
(** Add a directed edge with integral capacity.  O(1) amortized. *)

val flow_on : t -> edge_id -> int
(** Flow currently routed on the given edge. *)

val min_cost_flow :
  t -> source:int -> sink:int -> ?max_flow:int -> unit -> int * float
(** Augment along successively cheapest source→sink paths until [max_flow]
    (default unbounded) units are routed or the sink becomes unreachable.
    Returns (achieved flow, total cost).  Because augmentation is by
    cheapest paths, for any target value [F] the returned flow of value
    [min F maxflow] has minimum cost among flows of that value. *)

(** {1 Lower-bounded networks} *)

type bounded_edge = {
  src : int;
  dst : int;
  lo : int;  (** Lower capacity bound, [0 <= lo <= hi]. *)
  hi : int;
  cost : float;  (** Must be >= 0 in {!solve_bounded}. *)
}

val solve_bounded :
  num_nodes:int ->
  edges:bounded_edge list ->
  source:int ->
  sink:int ->
  flow_value:int ->
  (int array * float, string) result
(** Minimum-cost integral flow of value exactly [flow_value] from [source]
    to [sink] respecting [lo <= flow_e <= hi] on every edge.  All costs must
    be non-negative (shift-transform beforehand if needed; see
    [Aggregate_consensus] for an example).  Returns per-edge flows in input
    order, or [Error] if no feasible flow exists. *)
