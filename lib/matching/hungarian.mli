(** Hungarian algorithm (Kuhn–Munkres with potentials) for the rectangular
    assignment problem in O(rows² · cols).

    The intersection-metric (§5.3) and footrule (§5.4) mean top-k answers are
    assignment problems: positions 1..k are agents and tuples are tasks. *)

val minimize : float array array -> int array * float
(** [minimize cost] assigns each row a distinct column minimizing total cost.
    Requires [rows <= cols] and finite entries.  Returns [(assignment,
    total)] with [assignment.(row) = col]. *)

val maximize : float array array -> int array * float
(** Same with profits: maximizes the total. *)

val minimize_square : float array array -> int array * float
(** Alias of {!minimize} for square matrices (kept for readability). *)
