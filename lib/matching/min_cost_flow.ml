module Fcmp = Consensus_util.Fcmp
module Obs = Consensus_obs.Obs

let solve_seconds =
  Obs.Histogram.make ~help:"Wall time of one min-cost-flow solve"
    "matching_min_cost_flow_seconds"

let augmentations =
  Obs.Counter.make ~help:"Augmenting paths routed by min-cost-flow solves"
    "matching_mcf_augmentations_total"

type t = {
  n : int;
  (* Edges stored in pairs: edge 2k is forward, 2k+1 its reverse. *)
  mutable heads : int array array; (* adjacency: node -> edge ids *)
  mutable dsts : int array;
  mutable caps : int array;
  mutable costs : float array;
  mutable num_edges : int;
  mutable adj : int list array; (* build-time adjacency *)
  mutable frozen : bool;
}

type edge_id = int

let create n =
  {
    n;
    heads = [||];
    dsts = Array.make 16 0;
    caps = Array.make 16 0;
    costs = Array.make 16 0.;
    num_edges = 0;
    adj = Array.make (max n 1) [];
    frozen = false;
  }

let num_nodes t = t.n

let ensure_capacity t needed =
  let cur = Array.length t.dsts in
  if needed > cur then begin
    let next = max needed (2 * cur) in
    let grow a fill =
      let b = Array.make next fill in
      Array.blit a 0 b 0 cur;
      b
    in
    t.dsts <- grow t.dsts 0;
    t.caps <- grow t.caps 0;
    t.costs <- grow t.costs 0.
  end

let add_edge t ~src ~dst ~cap ~cost =
  if t.frozen then invalid_arg "Min_cost_flow.add_edge: network already solved";
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Min_cost_flow.add_edge: node out of range";
  if cap < 0 then invalid_arg "Min_cost_flow.add_edge: negative capacity";
  let id = t.num_edges in
  ensure_capacity t (id + 2);
  t.dsts.(id) <- dst;
  t.caps.(id) <- cap;
  t.costs.(id) <- cost;
  t.dsts.(id + 1) <- src;
  t.caps.(id + 1) <- 0;
  t.costs.(id + 1) <- -.cost;
  t.adj.(src) <- id :: t.adj.(src);
  t.adj.(dst) <- (id + 1) :: t.adj.(dst);
  t.num_edges <- t.num_edges + 2;
  id

let flow_on t e =
  if e < 0 || e >= t.num_edges || e land 1 = 1 then
    invalid_arg "Min_cost_flow.flow_on: bad edge id";
  t.caps.(e + 1)

let freeze t =
  if not t.frozen then begin
    t.heads <- Array.map (fun l -> Array.of_list (List.rev l)) t.adj;
    t.frozen <- true
  end

(* SPFA (queue-based Bellman-Ford): tolerates negative edge costs. *)
let shortest_path t source sink dist prev_edge =
  Array.fill dist 0 t.n infinity;
  let in_queue = Array.make t.n false in
  dist.(source) <- 0.;
  let q = Queue.create () in
  Queue.add source q;
  in_queue.(source) <- true;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    in_queue.(u) <- false;
    let du = dist.(u) in
    Array.iter
      (fun e ->
        if t.caps.(e) > 0 then begin
          let v = t.dsts.(e) in
          let nd = du +. t.costs.(e) in
          (* Scale-aware strict improvement: with costs around 1e9 one ulp
             is ~1.2e-7, so an absolute 1e-12 margin lets rounding noise on
             zero-cost residual cycles relax forever (SPFA livelock).  Fcmp's
             relative test keeps the margin proportional to the labels and
             stays safe when dist.(v) is still infinity. *)
          if Fcmp.lt ~eps:1e-12 nd dist.(v) then begin
            dist.(v) <- nd;
            prev_edge.(v) <- e;
            if not in_queue.(v) then begin
              Queue.add v q;
              in_queue.(v) <- true
            end
          end
        end)
      t.heads.(u)
  done;
  dist.(sink) < infinity

let min_cost_flow t ~source ~sink ?(max_flow = max_int) () =
  if source = sink then invalid_arg "Min_cost_flow.min_cost_flow: source = sink";
  freeze t;
  let dist = Array.make t.n infinity in
  let prev_edge = Array.make t.n (-1) in
  let flow = ref 0 and cost = ref 0. in
  let paths = ref 0 in
  Obs.Histogram.time solve_seconds @@ fun () ->
  Obs.with_span
    ~attrs:(fun () ->
      [
        ("nodes", Obs.Int t.n);
        ("edges", Obs.Int (t.num_edges / 2));
        ("augmenting_paths", Obs.Int !paths);
        ("flow", Obs.Int !flow);
      ])
    "matching.min_cost_flow"
  @@ fun () ->
  let continue = ref true in
  while !continue && !flow < max_flow do
    if shortest_path t source sink dist prev_edge then begin
      incr paths;
      Obs.Counter.incr augmentations;
      (* Bottleneck along the path. *)
      let bottleneck = ref (max_flow - !flow) in
      let v = ref sink in
      while !v <> source do
        let e = prev_edge.(!v) in
        if t.caps.(e) < !bottleneck then bottleneck := t.caps.(e);
        v := t.dsts.(e lxor 1)
      done;
      let v = ref sink in
      while !v <> source do
        let e = prev_edge.(!v) in
        t.caps.(e) <- t.caps.(e) - !bottleneck;
        t.caps.(e lxor 1) <- t.caps.(e lxor 1) + !bottleneck;
        v := t.dsts.(e lxor 1)
      done;
      flow := !flow + !bottleneck;
      cost := !cost +. (dist.(sink) *. float_of_int !bottleneck)
    end
    else continue := false
  done;
  (!flow, !cost)

type bounded_edge = { src : int; dst : int; lo : int; hi : int; cost : float }

let solve_bounded ~num_nodes ~edges ~source ~sink ~flow_value =
  List.iter
    (fun e ->
      if e.lo < 0 || e.lo > e.hi then
        invalid_arg "Min_cost_flow.solve_bounded: need 0 <= lo <= hi";
      if e.cost < 0. then
        invalid_arg "Min_cost_flow.solve_bounded: negative cost (shift first)")
    edges;
  if flow_value < 0 then
    invalid_arg "Min_cost_flow.solve_bounded: negative flow value";
  (* Standard reduction: route each lower bound unconditionally, recording
     node imbalances, then satisfy imbalances from a super source/sink.
     The extra sink→source edge turns the s-t flow into a circulation. *)
  let super_s = num_nodes and super_t = num_nodes + 1 in
  let net = create (num_nodes + 2) in
  let excess = Array.make num_nodes 0 in
  let base_cost = ref 0. in
  let ids =
    List.map
      (fun e ->
        excess.(e.dst) <- excess.(e.dst) + e.lo;
        excess.(e.src) <- excess.(e.src) - e.lo;
        base_cost := !base_cost +. (float_of_int e.lo *. e.cost);
        add_edge net ~src:e.src ~dst:e.dst ~cap:(e.hi - e.lo) ~cost:e.cost)
      edges
  in
  (* Force exactly [flow_value] units s→t by a [flow_value, flow_value]
     return edge, folded into the imbalances directly. *)
  excess.(source) <- excess.(source) + flow_value;
  excess.(sink) <- excess.(sink) - flow_value;
  let required = ref 0 in
  Array.iteri
    (fun v ex ->
      if ex > 0 then begin
        ignore (add_edge net ~src:super_s ~dst:v ~cap:ex ~cost:0.);
        required := !required + ex
      end
      else if ex < 0 then
        ignore (add_edge net ~src:v ~dst:super_t ~cap:(-ex) ~cost:0.))
    excess;
  let achieved, aux_cost = min_cost_flow net ~source:super_s ~sink:super_t () in
  if achieved < !required then Error "no feasible flow"
  else begin
    let flows =
      List.map (fun (e, id) -> e.lo + flow_on net id)
        (List.combine edges ids)
    in
    Ok (Array.of_list flows, !base_cost +. aux_cost)
  end
