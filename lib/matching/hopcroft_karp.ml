let max_matching ~n_left ~n_right edges =
  let adj = Array.make (max n_left 1) [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n_left || v < 0 || v >= n_right then
        invalid_arg "Hopcroft_karp.max_matching: vertex out of range";
      adj.(u) <- v :: adj.(u))
    edges;
  let match_l = Array.make (max n_left 1) (-1) in
  let match_r = Array.make (max n_right 1) (-1) in
  let dist = Array.make (max n_left 1) max_int in
  let bfs () =
    let q = Queue.create () in
    for u = 0 to n_left - 1 do
      if match_l.(u) = -1 then begin
        dist.(u) <- 0;
        Queue.add u q
      end
      else dist.(u) <- max_int
    done;
    let found = ref false in
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun v ->
          match match_r.(v) with
          | -1 -> found := true
          | u' ->
              if dist.(u') = max_int then begin
                dist.(u') <- dist.(u) + 1;
                Queue.add u' q
              end)
        adj.(u)
    done;
    !found
  in
  let rec dfs u =
    List.exists
      (fun v ->
        match match_r.(v) with
        | -1 ->
            match_l.(u) <- v;
            match_r.(v) <- u;
            true
        | u' ->
            if dist.(u') = dist.(u) + 1 && dfs u' then begin
              match_l.(u) <- v;
              match_r.(v) <- u;
              true
            end
            else false)
      adj.(u)
    ||
    (dist.(u) <- max_int;
     false)
  in
  while bfs () do
    for u = 0 to n_left - 1 do
      if match_l.(u) = -1 then ignore (dfs u)
    done
  done;
  if n_left = 0 then [||] else match_l

let matching_size match_l =
  Array.fold_left (fun acc v -> if v >= 0 then acc + 1 else acc) 0 match_l

let is_perfect_left match_l = Array.for_all (fun v -> v >= 0) match_l
