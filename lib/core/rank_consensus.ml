open Consensus_anxor
module Aggregation = Consensus_ranking.Aggregation
module Hungarian = Consensus_matching.Hungarian
module Pool = Consensus_engine.Pool
module Obs = Consensus_obs.Obs
module Cache = Consensus_cache.Cache

let algo_span name ~n f =
  Obs.with_span
    ~attrs:(fun () -> [ ("keys", Obs.Int n) ])
    ("core.rank." ^ name)
    f

type ctx = {
  db : Db.t;
  pool : Pool.t; (* engine pool shared by every computation on this ctx *)
  keys : int array;
  key_pos : (int, int) Hashtbl.t;
  (* full positional distribution per key index: full.(t).(j-1) = Pr(r = j) *)
  full : float array array;
  present : float array;
  mutable dis : float array array option; (* dis.(i).(j) = cost of i before j *)
}

let make_ctx ?pool db =
  if not (Db.scores_distinct db) then
    invalid_arg "Rank_consensus.make_ctx: scores must be pairwise distinct";
  algo_span "make_ctx" ~n:(Array.length (Db.keys db)) @@ fun () ->
  let pool = Pool.resolve pool in
  let keys = Db.keys db in
  let key_pos = Hashtbl.create (Array.length keys) in
  Array.iteri (fun i key -> Hashtbl.replace key_pos key i) keys;
  (* Each key's untruncated rank distribution is an O(n²) generating-function
     run over the shared immutable tree — the O(n³) total is the dominant
     cost of full-ranking consensus and parallelizes perfectly over keys. *)
  let full =
    let compute () =
      Pool.parallel_map ~pool ~stage:"full_rank_dist"
        (fun key ->
          let acc = Array.make (Db.num_alts db) 0. in
          List.iter
            (fun l ->
              let d = Marginals.full_rank_dist_alt db l in
              Array.iteri (fun m p -> acc.(m) <- acc.(m) +. p) d)
            (Db.alts_of_key db key);
          acc)
        keys
    in
    if not (Cache.enabled ()) then compute ()
    else
      let key =
        Cache.key ~family:"full_rank_dist" ~digest:(Db.digest db) ~params:[]
      in
      match Cache.memo key (fun () -> Cache.Matrix (compute ())) with
      | Cache.Matrix m -> m
      | _ -> assert false
  in
  let present = Array.map (Array.fold_left ( +. ) 0.) full in
  { db; pool; keys; key_pos; full; present; dis = None }

let db ctx = ctx.db
let pool ctx = ctx.pool
let keys ctx = Array.copy ctx.keys

let kidx ctx key =
  match Hashtbl.find_opt ctx.key_pos key with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Rank_consensus: unknown key %d" key)

let n_keys ctx = Array.length ctx.keys

let check_perm ctx sigma =
  let n = n_keys ctx in
  if Array.length sigma <> n then
    invalid_arg "Rank_consensus: answer must rank every key";
  let seen = Array.make n false in
  Array.iter
    (fun key ->
      let i = kidx ctx key in
      if seen.(i) then invalid_arg "Rank_consensus: duplicate key in answer";
      seen.(i) <- true)
    sigma

(* Positional cost of placing key index [t] at position [pos] (1-based):
   E|pos - pos_pw(t)| with absent tuples at position n+1. *)
let position_cost ctx t pos =
  let n = n_keys ctx in
  let acc = ref ((1. -. ctx.present.(t)) *. float_of_int (n + 1 - pos)) in
  Array.iteri
    (fun m p ->
      if p <> 0. then acc := !acc +. (p *. float_of_int (abs (pos - (m + 1)))))
    ctx.full.(t);
  !acc

let expected_footrule ctx sigma =
  check_perm ctx sigma;
  let acc = ref 0. in
  Array.iteri
    (fun pos0 key -> acc := !acc +. position_cost ctx (kidx ctx key) (pos0 + 1))
    sigma;
  !acc

let disagreement_matrix ctx =
  match ctx.dis with
  | Some w -> w
  | None ->
      let n = n_keys ctx in
      algo_span "disagreement_matrix" ~n @@ fun () ->
      let compute () =
        Pool.parallel_init ~pool:ctx.pool ~stage:"disagreement" n (fun i ->
            Array.init n (fun j ->
                if i = j then 0.
                else
                  (* i before j disagrees iff j is present and not beaten
                     by i. *)
                  ctx.present.(j)
                  -. Marginals.beats_present ctx.db ctx.keys.(i) ctx.keys.(j)))
      in
      let w =
        if not (Cache.enabled ()) then compute ()
        else
          let key =
            Cache.key ~family:"rank_disagreement" ~digest:(Db.digest ctx.db)
              ~params:[]
          in
          match Cache.memo key (fun () -> Cache.Matrix (compute ())) with
          | Cache.Matrix m -> m
          | _ -> assert false
      in
      ctx.dis <- Some w;
      w

let expected_kendall ctx sigma =
  check_perm ctx sigma;
  let w = disagreement_matrix ctx in
  let n = n_keys ctx in
  let acc = ref 0. in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      acc := !acc +. w.(kidx ctx sigma.(a)).(kidx ctx sigma.(b))
    done
  done;
  !acc

let mean_footrule ctx =
  let n = n_keys ctx in
  algo_span "mean_footrule" ~n @@ fun () ->
  let cost =
    Pool.parallel_init ~pool:ctx.pool ~stage:"footrule_cost" n (fun t ->
        Array.init n (fun pos0 -> position_cost ctx t (pos0 + 1)))
  in
  let assignment, total = Hungarian.minimize cost in
  let sigma = Array.make n 0 in
  Array.iteri (fun t pos -> sigma.(pos) <- ctx.keys.(t)) assignment;
  (sigma, total)

(* The Kemeny-style preference matrix consumed by [Aggregation]: its cost
   function charges pref.(later).(earlier), so pref.(a).(b) must be the
   cost of ordering b before a. *)
let pref_matrix ctx =
  let w = disagreement_matrix ctx in
  let n = n_keys ctx in
  Array.init n (fun a -> Array.init n (fun b -> w.(b).(a)))

let order_to_keys ctx order = Array.map (fun i -> ctx.keys.(i)) order

let mean_kendall_pivot rng ?(trials = 8) ctx =
  algo_span "mean_kendall_pivot" ~n:(n_keys ctx) @@ fun () ->
  let pref = pref_matrix ctx in
  let order, _ = Aggregation.best_pivot_of rng ~trials pref in
  let order, cost = Aggregation.local_search pref order in
  (order_to_keys ctx order, cost)

let mean_kendall_exact ctx =
  algo_span "mean_kendall_exact" ~n:(n_keys ctx) @@ fun () ->
  let pref = pref_matrix ctx in
  let order, cost = Aggregation.kemeny_exact pref in
  (order_to_keys ctx order, cost)

let mean_kendall_mc4 ctx =
  let pref = pref_matrix ctx in
  let order, cost = Aggregation.mc4 pref in
  (order_to_keys ctx order, cost)

let mean_kendall_copeland ctx =
  let pref = pref_matrix ctx in
  let order, cost = Aggregation.copeland pref in
  (order_to_keys ctx order, cost)

let mean_kendall_via_footrule ctx =
  let sigma, _ = mean_footrule ctx in
  (sigma, expected_kendall ctx sigma)

(* ---------- enumeration oracles ---------- *)

let world_positions ctx world =
  (* key index -> Some rank (1-based) for present keys *)
  let n = n_keys ctx in
  let pos = Array.make n None in
  let sorted =
    List.sort (fun (a : Db.alt) b -> Float.compare b.value a.value) world
  in
  List.iteri
    (fun i (a : Db.alt) -> pos.(kidx ctx a.key) <- Some (i + 1))
    sorted;
  pos

let enum_expected_footrule ctx sigma =
  check_perm ctx sigma;
  let n = n_keys ctx in
  Worlds.enumerate (Db.tree ctx.db)
  |> List.fold_left
       (fun acc (p, world) ->
         let pos = world_positions ctx world in
         let d = ref 0. in
         Array.iteri
           (fun pos0 key ->
             let target =
               match pos.(kidx ctx key) with Some r -> r | None -> n + 1
             in
             d := !d +. float_of_int (abs (pos0 + 1 - target)))
           sigma;
         acc +. (p *. !d))
       0.

let enum_expected_kendall ctx sigma =
  check_perm ctx sigma;
  Worlds.enumerate (Db.tree ctx.db)
  |> List.fold_left
       (fun acc (p, world) ->
         let pos = world_positions ctx world in
         let d = ref 0 in
         let n = Array.length sigma in
         for a = 0 to n - 1 do
           for b = a + 1 to n - 1 do
             match (pos.(kidx ctx sigma.(a)), pos.(kidx ctx sigma.(b))) with
             | Some ra, Some rb -> if rb < ra then incr d
             | None, Some _ -> incr d (* earlier-in-σ key is absent *)
             | _ -> ()
           done
         done;
         acc +. (p *. float_of_int !d))
       0.

let rec permutations = function
  | [] -> [ [] ]
  | xs ->
      List.concat_map
        (fun x ->
          List.map (fun rest -> x :: rest)
            (permutations (List.filter (fun y -> y <> x) xs)))
        xs

let brute_force_mean ctx metric =
  if n_keys ctx > 8 then invalid_arg "Rank_consensus.brute_force_mean: too many keys";
  let eval =
    match metric with
    | `Footrule -> enum_expected_footrule ctx
    | `Kendall -> enum_expected_kendall ctx
  in
  permutations (Array.to_list ctx.keys)
  |> List.map (fun p ->
         let sigma = Array.of_list p in
         (sigma, eval sigma))
  |> List.fold_left
       (fun acc (sigma, d) ->
         match acc with
         | Some (_, bd) when bd <= d -> acc
         | _ -> Some (sigma, d))
       None
  |> Option.get
