(** Consensus clustering over an uncertain attribute (paper §6.2).

    Each possible world clusters the keys by equality of their (uncertain)
    value attribute; keys absent from the world form one artificial cluster.
    The distance between clusterings is the number of unordered key pairs
    clustered together in one and separated in the other.  The mean
    clustering minimizes the expected distance to the world's clustering.

    A clustering is an array indexed by {e key position} (the order of
    [Db.keys]) whose entries are arbitrary cluster labels. *)

open Consensus_anxor

type clustering = int array

type t
(** Pre-computed co-occurrence weights of an instance. *)

val make : ?pool:Consensus_engine.Pool.t -> Db.t -> t
(** Compute [w_ij = Pr(key_i, key_j clustered together)] for all pairs via
    pairwise joint probabilities (the generating-function x²-coefficient
    computation of §6.2 specialised to pairs):
    [Σ_a Pr(i.A = a ∧ j.A = a) + Pr(both absent)].  The O(n²) pair sweep is
    parallelized over rows on [pool] (default: the global engine pool),
    which is retained for {!best_of_worlds}. *)

val db : t -> Db.t

val pool : t -> Consensus_engine.Pool.t
(** The engine pool the instance computes on (useful for metrics). *)

val num_keys : t -> int
val weight : t -> int -> int -> float
(** Co-occurrence probability by key positions. *)

val expected_dist : t -> clustering -> float
(** [E d(C, C_pw) = Σ_{i<j} (together_C ij ? 1 - w_ij : w_ij)]. *)

val pivot : Consensus_util.Prng.t -> t -> clustering
(** Ailon–Charikar–Newman CC-Pivot on the weighted co-occurrence graph:
    random pivot absorbs every unclustered key with [w > 1/2]; expected
    constant-factor approximation under the probability constraint. *)

val best_pivot_of : Consensus_util.Prng.t -> trials:int -> t -> clustering
(** Best of several pivot runs under {!expected_dist}. *)

val local_search : t -> clustering -> clustering
(** Move single keys between clusters (or to fresh singletons) until no move
    improves the expected distance. *)

val best_of_worlds :
  Consensus_util.Prng.t -> samples:int -> t -> clustering
(** Sample possible worlds and return the best induced clustering: the
    sampled analogue of the classic pick-a-input 2-approximation.  Samples
    are drawn from per-sample generators split off [rng] up front and
    scored in parallel on the instance's pool; the answer depends only on
    [rng] and [samples], not on the [jobs] setting. *)

val clustering_of_world : t -> Db.alt list -> clustering
(** The clustering induced by a concrete possible world (absent keys share
    one artificial cluster). *)

val distance : clustering -> clustering -> int
(** Pairwise-disagreement distance between two clusterings of the same
    keys. *)

val brute_force : t -> clustering * float
(** Exact mean clustering by enumerating all set partitions (keys <= 10). *)

val enum_expected_dist : t -> clustering -> float
(** Enumeration twin of {!expected_dist} (test oracle). *)

val normalize : clustering -> clustering
(** Canonical labelling (first occurrence order), for comparisons. *)
