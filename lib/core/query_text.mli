(** The query wire format: one-line text syntax shared by every frontend.

    This is the {e single} concrete syntax for consensus queries — CLI batch
    files ([batch --batch FILE]), [explain]'s QUERY argument, the fuzzer's
    regression corpus and the serve daemon's [POST /query] / [POST /batch]
    request bodies all parse it here, and the printers below are exact
    inverses of the parsers, so queries round-trip through logs, corpus
    files and HTTP bodies without a private dialect anywhere.

    One query per line; blank lines and [#] comments are skipped.  A line is
    a family name followed by [key=value] options (any order):

    {v
    world     [metric=symdiff|jaccard]            [flavor=mean|median]
    topk      [k=N] [metric=symdiff|intersection|footrule|kendall]
                                                  [flavor=mean|median]
    rank      [metric=footrule|kendall]
    cluster   [trials=N] [samples=N]
    aggregate [flavor=mean|median]
    v}

    Defaults match the single-query CLI commands: [metric=symdiff]
    ([rank]: [footrule]), [flavor=mean], [k=10], [trials=8], no sampling.

    The [aggregate] family carries its tuple × group matrix {e out of band}
    (the corpus file stores it after the query line; [explain] reads it
    from [-i]), so the line itself only fixes the flavor: such lines parse
    as {!proto} values, not complete {!Engine_api.query} values.  The
    database-backed entry points ({!parse_line}, {!parse_string}) reject
    them with a clear message. *)

(** {1 Protocol lines}

    The full wire syntax: every well-formed line, including [aggregate]. *)

type proto =
  | Db_query of Engine_api.query
      (** A query evaluated against the shared database. *)
  | Aggregate_query of Engine_api.flavor
      (** An [aggregate] line; the matrix arrives out of band and the
          caller assembles [Engine_api.Aggregate (matrix, flavor)]. *)

val parse_proto_line : string -> (proto option, string) result
(** Parse one wire line.  [Ok None] for blank/comment lines, [Error msg]
    on malformed input (unknown family, option or value). *)

val print_proto : proto -> string
(** Exact inverse of {!parse_proto_line}:
    [parse_proto_line (print_proto p) = Ok (Some p)] for every [p]
    (defaults are printed explicitly, so the rendering is canonical). *)

val proto_of_query : Engine_api.query -> proto
(** [Db_query q], except [Aggregate (_, f)] which folds to
    [Aggregate_query f] (the matrix is not part of the wire line). *)

(** {1 Database-backed queries} *)

val parse_line : string -> (Engine_api.query option, string) result
(** {!parse_proto_line} restricted to database-backed families: an
    [aggregate] line is an error here, because no matrix can follow. *)

val parse_string : string -> (Engine_api.query list, string) result
(** Parse a whole batch file's contents with {!parse_line}; the first
    malformed line wins and the error message carries its (1-based) line
    number. *)

val unparse : Engine_api.query -> string
(** Render a query back into the line syntax; [parse_line (unparse q)]
    reads it back.  Aggregate queries render as [aggregate flavor=...] —
    a {!proto}-only form that {!parse_line} rejects (use {!print_proto} /
    {!parse_proto_line} for the full wire syntax). *)
