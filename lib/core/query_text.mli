(** Text format for batch query files (CLI [batch --batch FILE]).

    One query per line; blank lines and [#] comments are skipped.  A line is
    a family name followed by [key=value] options (any order):

    {v
    world   [metric=symdiff|jaccard]            [flavor=mean|median]
    topk    [k=N] [metric=symdiff|intersection|footrule|kendall]
                                                [flavor=mean|median]
    rank    [metric=footrule|kendall]
    cluster [trials=N] [samples=N]
    v}

    Defaults match the single-query CLI commands: [metric=symdiff]
    ([rank]: [footrule]), [flavor=mean], [k=10], [trials=8], no sampling.
    Aggregate queries are not expressible here — they take a matrix, not
    the shared database. *)

val parse_line : string -> (Engine_api.query option, string) result
(** Parse one line.  [Ok None] for blank/comment lines, [Error msg] on
    malformed input (unknown family, option or value). *)

val parse_string : string -> (Engine_api.query list, string) result
(** Parse a whole file's contents; the first malformed line wins and the
    error message carries its (1-based) line number. *)

val unparse : Engine_api.query -> string
(** Render a query back into the line syntax; [parse_line (unparse q)]
    reads it back.  Aggregate queries render as [aggregate flavor=...] —
    a form {!parse_line} rejects, because the matrix travels out of band
    (the oracle corpus format stores it after the query line). *)
