(** Consensus answers for group-by count aggregates (paper §6.1).

    An instance is an [n × m] row-stochastic matrix [P]: tuple [i] takes
    group [j] with probability [P.(i).(j)] (tuples independent, every tuple
    present).  A query answer is the [m]-vector of group counts; the
    distance is the squared L2 vector distance. *)

type t
(** A validated instance. *)

val create : float array array -> t
(** Validate row-stochasticity (rows sum to 1 ± 1e-6, entries in [0,1]). *)

val num_tuples : t -> int
val num_groups : t -> int
val probs : t -> float array array

val mean : t -> float array
(** The mean answer [r̄ = 1·P] (expected count per group); minimizes the
    expected squared distance over all real vectors. *)

val variance : t -> float
(** [Σ_v Var(r_v) = Σ_{i,v} P.(i).(v)(1 - P.(i).(v))]: the irreducible part
    of the expected squared distance. *)

val expected_sq_dist : t -> float array -> float
(** Exact [E‖c - r‖²  =  ‖c - r̄‖² + variance] (bias–variance identity). *)

val median : t -> int array * float array
(** The {e exact} median answer: the possible count vector closest to [r̄],
    found by a min-cost flow with convex per-unit group costs
    [2u - 1 - 2·r̄_v] for the u-th unit of group [v].  Returns a witness
    assignment (tuple → group, a possible world realizing the vector) and
    the count vector.

    Note: the paper reaches this vector through Lemma 3 + Theorem 5 and
    bounds its quality by a factor 4 (Corollary 2); by the bias–variance
    identity the closest possible vector in fact {e is} the exact median,
    so the measured ratio is 1 (see EXPERIMENTS.md E8). *)

val median_paper_network : t -> int array * float array
(** Theorem 5's construction verbatim: each group [v] gets a fixed-flow edge
    [e1] of value ⌊r̄_v⌋ (lower bound = upper bound) and a unit edge [e2] of
    cost (⌈r̄_v⌉-r̄_v)² - (⌊r̄_v⌋-r̄_v)², shifted to be non-negative (every
    flow saturates the same number of e2 edges, so the argmin is
    unchanged); solved with the lower-bound min-cost-flow reduction.
    Restricted to the floor/ceil vectors of Lemma 3. *)

val is_possible : t -> int array -> bool
(** Is the count vector a possible answer?  Checked with a Hopcroft–Karp
    matching of tuples to (group, slot) pairs. *)

val brute_force_median : t -> int array * float array
(** Enumerate all [mⁿ] worlds (tiny instances): the possible vector
    minimizing the exact expected distance, with a witness assignment. *)

val enum_expected_sq_dist : t -> float array -> float
(** Enumeration twin of {!expected_sq_dist} (test oracle). *)

val counts_of_assignment : t -> int array -> float array
(** Count vector of a tuple→group assignment. *)
