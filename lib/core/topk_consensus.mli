(** Consensus top-k answers (paper §5).

    A top-k answer is an ordered array of distinct keys ({!Consensus_ranking.Topk_list.t}).
    For each metric this module provides (i) a closed-form evaluator of the
    expected distance between a candidate answer and the random world's
    answer, computed with generating functions, and (ii) the consensus
    optimization algorithms of the paper. *)

open Consensus_anxor
module Topk_list = Consensus_ranking.Topk_list

type ctx
(** Pre-computed rank probabilities of a database for a fixed [k]; share one
    [ctx] across evaluations and optimizations. *)

val make_ctx : ?pool:Consensus_engine.Pool.t -> Db.t -> k:int -> ctx
(** O(n²k) pre-computation of all positional probabilities, parallelized
    over the keys on [pool] (default: the global engine pool).  The pool is
    retained by the context: every subsequent evaluator and optimizer runs
    its parallel stages on it.  Results are identical whatever the pool's
    [jobs] setting. *)

val db : ctx -> Db.t
val k : ctx -> int

val pool : ctx -> Consensus_engine.Pool.t
(** The engine pool the context computes on (useful for metrics). *)

val rank_leq : ctx -> int -> float
(** [Pr(r(key) <= k)] from the context table. *)

(** {1 Expected-distance evaluators (closed forms)} *)

val expected_sym_diff : ctx -> Topk_list.t -> float
(** [E d_Δ(τ, τ_pw)], exact (proof of Theorem 3 generalized to worlds with
    fewer than [k] tuples). *)

val expected_intersection : ctx -> Topk_list.t -> float
(** [E d_I(τ, τ_pw)], exact (§5.3). *)

val expected_footrule : ctx -> Topk_list.t -> float
(** [E d_F(τ, τ_pw)] with location parameter k+1, exact (§5.4, Figure 2). *)

val expected_kendall : ctx -> Topk_list.t -> float
(** [E d_K(τ, τ_pw)] for the minimizing Kendall distance K_min, exact via
    pairwise joint top-k probabilities (§5.5).  O(n·k) pair evaluations of
    O(n·k) each on first use; joints are cached in the context. *)

val expected_kendall_p : p:float -> ctx -> Topk_list.t -> float
(** Exact expectation of Fagin's [K^(p)] (penalty parameter) distance:
    undetermined pairs — both keys in one answer, neither in the other —
    contribute [p].  [expected_kendall_p ~p:0.] = {!expected_kendall}.
    O(n²) joint probabilities on first use. *)

(** {1 Consensus answers} *)

val mean_sym_diff : ctx -> Topk_list.t
(** Theorem 3: the [k] keys with largest [Pr(r(t) <= k)] (the PT-k /
    Global-Top-k answer). *)

val median_sym_diff : ctx -> Topk_list.t
(** Theorem 4: the top-k answer of a possible world maximizing
    [Σ_{t∈τ} Pr(r(t) <= k)], by the threshold-and-knapsack dynamic program
    over the and/xor tree.  If no world has [k] or more tuples the best
    shorter answer is returned. *)

val mean_intersection : ctx -> Topk_list.t
(** Exact mean under the intersection metric via a maximum-weight assignment
    of tuples to positions with profit [Σ_{i>=j} Pr(r(t)<=i)/i] (§5.3). *)

val mean_intersection_upsilon : ctx -> Topk_list.t
(** The ΥH-ranking answer: an H_k-approximation of {!mean_intersection}
    (§5.3). *)

val mean_footrule : ctx -> Topk_list.t
(** Exact mean under the footrule metric via a minimum-cost assignment with
    the position costs of Figure 2 (§5.4). *)

val mean_kendall_pivot :
  Consensus_util.Prng.t -> ?trials:int -> ctx -> Topk_list.t
(** Kendall-tau consensus by KwikSort over the tournament
    [Pr(r(t_i) < r(t_j))] restricted to a candidate pool, improved by local
    search and evaluated with {!expected_kendall}; a practical stand-in for
    Ailon's LP-based 3/2-approximation, which uses exactly the same pairwise
    information (§5.5 and DESIGN.md §3). *)

val mean_kendall_footrule : ctx -> Topk_list.t
(** The footrule-optimal answer: a 2-approximation for the Kendall metric
    (the two metrics are within factor 2 of each other, §5.5). *)

val mean_kendall_pool_exact : ?pool:int -> ctx -> Topk_list.t
(** Exhaustive Kendall optimization restricted to a candidate pool: every
    k-subset of the [pool] (default [k + 6]) most top-k-likely keys is
    ordered optimally by the Kemeny bitmask DP and scored with
    {!expected_kendall}.  Exponential in [k] ([C(pool, k) · 2^k]); exact
    whenever the true optimum uses only pool keys.  Requires [k <= 10]. *)

(** {1 Sampled consensus}

    Monte-Carlo alternatives to the generating-function algorithms: draw
    worlds, aggregate their top-k answers with the classic
    inconsistent-information-aggregation machinery (§1's framing).  They
    converge to the exact consensus answers and trade accuracy for
    independence from the O(n²k) pre-computation (experiment E19). *)

val sampled_mean_sym_diff :
  Consensus_util.Prng.t -> samples:int -> Db.t -> k:int -> Topk_list.t
(** Top-k keys by membership frequency across sampled answers: the
    sampling estimate of Theorem 3's answer. *)

val sampled_mean_footrule :
  Consensus_util.Prng.t -> samples:int -> Db.t -> k:int -> Topk_list.t
(** Footrule aggregation of the sampled answers (positions of missing keys
    at k+1) via the assignment problem: the sampling estimate of §5.4's
    answer. *)

(** {1 Enumeration oracles} *)

type metric = Sym_diff | Intersection | Footrule | Kendall

val eval_metric : metric -> k:int -> Topk_list.t -> Topk_list.t -> float

val enum_expected : ctx -> metric -> Topk_list.t -> float
(** Expected distance by full world enumeration (test oracle). *)

val mc_expected :
  Consensus_util.Prng.t -> samples:int -> ctx -> metric -> Topk_list.t -> float
(** Monte-Carlo estimate of the expected distance by world sampling;
    validates the closed-form evaluators at scales where enumeration is
    impossible (EXPERIMENTS.md E4). *)

val brute_force_mean : ctx -> metric -> Topk_list.t * float
(** Argmin of {!enum_expected} over all ordered k-tuples of keys (tiny
    instances only). *)

val brute_force_median : ctx -> metric -> Topk_list.t * float
(** Argmin over the distinct top-k answers of the possible worlds, by
    enumeration. *)
