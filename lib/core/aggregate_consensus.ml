module Mcf = Consensus_matching.Min_cost_flow
module Hk = Consensus_matching.Hopcroft_karp

type t = { probs : float array array; n : int; m : int }

let create probs =
  let n = Array.length probs in
  if n = 0 then invalid_arg "Aggregate_consensus.create: empty matrix";
  let m = Array.length probs.(0) in
  if m = 0 then invalid_arg "Aggregate_consensus.create: no groups";
  Array.iteri
    (fun i row ->
      if Array.length row <> m then
        invalid_arg "Aggregate_consensus.create: ragged matrix";
      let total = Array.fold_left ( +. ) 0. row in
      Array.iter
        (fun p ->
          if not (Consensus_util.Fcmp.is_probability ~eps:1e-6 p) then
            invalid_arg "Aggregate_consensus.create: entry not a probability")
        row;
      if not (Consensus_util.Fcmp.approx ~eps:1e-6 total 1.) then
        invalid_arg
          (Printf.sprintf "Aggregate_consensus.create: row %d sums to %g" i total))
    probs;
  { probs = Array.map Array.copy probs; n; m }

let num_tuples t = t.n
let num_groups t = t.m
let probs t = Array.map Array.copy t.probs

let mean t =
  let r = Array.make t.m 0. in
  Array.iter (fun row -> Array.iteri (fun v p -> r.(v) <- r.(v) +. p) row) t.probs;
  r

let variance t =
  Array.fold_left
    (fun acc row ->
      Array.fold_left (fun acc p -> acc +. (p *. (1. -. p))) acc row)
    0. t.probs

let expected_sq_dist t c =
  if Array.length c <> t.m then
    invalid_arg "Aggregate_consensus.expected_sq_dist: dimension mismatch";
  let r_bar = mean t in
  let bias = ref 0. in
  Array.iteri (fun v cv -> bias := !bias +. ((cv -. r_bar.(v)) ** 2.)) c;
  !bias +. variance t

let counts_of_assignment t assignment =
  let r = Array.make t.m 0. in
  Array.iter (fun v -> r.(v) <- r.(v) +. 1.) assignment;
  ignore t;
  r

let support t v =
  (* tuples that may take group v *)
  let acc = ref [] in
  for i = t.n - 1 downto 0 do
    if t.probs.(i).(v) > 0. then acc := i :: !acc
  done;
  !acc

(* Node layout for the flow networks: 0 = source, 1..n = tuples,
   n+1..n+m = groups, n+m+1 = sink. *)
let tuple_node i = 1 + i
let group_node t v = 1 + t.n + v

let extract_assignment t net tuple_edges =
  let assignment = Array.make t.n (-1) in
  Array.iteri
    (fun i edges ->
      List.iter
        (fun (v, id) -> if Mcf.flow_on net id = 1 then assignment.(i) <- v)
        edges)
    tuple_edges;
  Array.iteri
    (fun i v ->
      if v < 0 then
        invalid_arg (Printf.sprintf "Aggregate_consensus: tuple %d unassigned" i))
    assignment;
  assignment

let median t =
  let r_bar = mean t in
  let sink = 1 + t.n + t.m in
  let net = Mcf.create (sink + 1) in
  for i = 0 to t.n - 1 do
    ignore (Mcf.add_edge net ~src:0 ~dst:(tuple_node i) ~cap:1 ~cost:0.)
  done;
  let tuple_edges =
    Array.init t.n (fun i ->
        List.filter_map
          (fun v ->
            if t.probs.(i).(v) > 0. then
              Some (v, Mcf.add_edge net ~src:(tuple_node i) ~dst:(group_node t v) ~cap:1 ~cost:0.)
            else None)
          (List.init t.m Fun.id))
  in
  (* Convex unit costs: the u-th unit routed into group v changes
     (r_v - r̄_v)² by 2u - 1 - 2 r̄_v; successive-shortest-path fills the
     cheap units first, so the flow cost is exactly ‖r - r̄‖² - ‖r̄‖². *)
  for v = 0 to t.m - 1 do
    let deg = List.length (support t v) in
    for u = 1 to deg do
      ignore
        (Mcf.add_edge net ~src:(group_node t v) ~dst:sink ~cap:1
           ~cost:(float_of_int ((2 * u) - 1) -. (2. *. r_bar.(v))))
    done
  done;
  let flow, _ = Mcf.min_cost_flow net ~source:0 ~sink ~max_flow:t.n () in
  if flow <> t.n then
    invalid_arg "Aggregate_consensus.median: infeasible instance";
  let assignment = extract_assignment t net tuple_edges in
  (assignment, counts_of_assignment t assignment)

let median_paper_network t =
  let r_bar = mean t in
  let sink = 1 + t.n + t.m in
  let source = 0 in
  (* e2 costs may be negative; every integral flow of value n saturates
     exactly n - Σ⌊r̄⌋ of them, so a uniform shift keeps the argmin. *)
  let e2_cost v =
    let lo = Float.floor r_bar.(v) and hi = Float.ceil r_bar.(v) in
    ((hi -. r_bar.(v)) ** 2.) -. ((lo -. r_bar.(v)) ** 2.)
  in
  let shift =
    List.init t.m e2_cost
    |> List.fold_left (fun acc c -> Float.max acc (-.c)) 0.
  in
  let edges = ref [] and edge_meta = ref [] in
  let push ~src ~dst ~lo ~hi ~cost meta =
    edges := { Mcf.src; dst; lo; hi; cost } :: !edges;
    edge_meta := meta :: !edge_meta
  in
  for i = 0 to t.n - 1 do
    push ~src:source ~dst:(tuple_node i) ~lo:1 ~hi:1 ~cost:0. `Source
    (* every tuple is present: its unit must flow *)
  done;
  for i = 0 to t.n - 1 do
    for v = 0 to t.m - 1 do
      if t.probs.(i).(v) > 0. then
        push ~src:(tuple_node i) ~dst:(group_node t v) ~lo:0 ~hi:1 ~cost:0.
          (`Tuple (i, v))
    done
  done;
  for v = 0 to t.m - 1 do
    let fl = int_of_float (Float.floor r_bar.(v)) in
    if fl > 0 then
      push ~src:(group_node t v) ~dst:sink ~lo:fl ~hi:fl ~cost:0. (`E1 v);
    if Float.ceil r_bar.(v) > Float.floor r_bar.(v) +. 1e-12 then
      push ~src:(group_node t v) ~dst:sink ~lo:0 ~hi:1 ~cost:(e2_cost v +. shift)
        (`E2 v)
  done;
  let edges = List.rev !edges and edge_meta = List.rev !edge_meta in
  match
    Mcf.solve_bounded ~num_nodes:(sink + 1) ~edges ~source ~sink ~flow_value:t.n
  with
  | Error msg -> invalid_arg ("Aggregate_consensus.median_paper_network: " ^ msg)
  | Ok (flows, _) ->
      let assignment = Array.make t.n (-1) in
      List.iteri
        (fun idx meta ->
          match meta with
          | `Tuple (i, v) when flows.(idx) = 1 -> assignment.(i) <- v
          | _ -> ())
        edge_meta;
      Array.iteri
        (fun i v ->
          if v < 0 then
            invalid_arg
              (Printf.sprintf "Aggregate_consensus.median_paper_network: tuple %d unassigned" i))
        assignment;
      (assignment, counts_of_assignment t assignment)

let is_possible t r =
  if Array.length r <> t.m then
    invalid_arg "Aggregate_consensus.is_possible: dimension mismatch";
  let total = Array.fold_left ( + ) 0 r in
  if total <> t.n || Array.exists (fun c -> c < 0) r then false
  else begin
    (* Right vertices: one slot per requested unit of each group. *)
    let slot_base = Array.make t.m 0 in
    let acc = ref 0 in
    Array.iteri
      (fun v c ->
        slot_base.(v) <- !acc;
        acc := !acc + c)
      r;
    let edges = ref [] in
    for i = 0 to t.n - 1 do
      for v = 0 to t.m - 1 do
        if t.probs.(i).(v) > 0. then
          for s = 0 to r.(v) - 1 do
            edges := (i, slot_base.(v) + s) :: !edges
          done
      done
    done;
    let ml = Hk.max_matching ~n_left:t.n ~n_right:total !edges in
    Hk.is_perfect_left ml
  end

let enum_expected_sq_dist t c =
  if t.m <= 0 || float_of_int t.m ** float_of_int t.n > 2e6 then
    invalid_arg "Aggregate_consensus.enum_expected_sq_dist: instance too large";
  let rec go i prob counts acc =
    if i = t.n then begin
      let d = ref 0. in
      Array.iteri (fun v cv -> d := !d +. ((cv -. float_of_int counts.(v)) ** 2.)) c;
      acc +. (prob *. !d)
    end
    else begin
      let acc = ref acc in
      for v = 0 to t.m - 1 do
        let p = t.probs.(i).(v) in
        if p > 0. then begin
          counts.(v) <- counts.(v) + 1;
          acc := go (i + 1) (prob *. p) counts !acc;
          counts.(v) <- counts.(v) - 1
        end
      done;
      !acc
    end
  in
  go 0 1. (Array.make t.m 0) 0.

let brute_force_median t =
  if float_of_int t.m ** float_of_int t.n > 2e6 then
    invalid_arg "Aggregate_consensus.brute_force_median: instance too large";
  let best = ref None in
  let assignment = Array.make t.n 0 in
  let rec go i prob =
    if i = t.n then begin
      if prob > 0. then begin
        let counts = counts_of_assignment t assignment in
        let d = expected_sq_dist t counts in
        match !best with
        | Some (_, _, bd) when bd <= d -> ()
        | _ -> best := Some (Array.copy assignment, counts, d)
      end
    end
    else
      for v = 0 to t.m - 1 do
        if t.probs.(i).(v) > 0. then begin
          assignment.(i) <- v;
          go (i + 1) (prob *. t.probs.(i).(v))
        end
      done
  in
  go 0 1.;
  match !best with
  | None -> invalid_arg "Aggregate_consensus.brute_force_median: no possible world"
  | Some (a, c, _) -> (a, c)
