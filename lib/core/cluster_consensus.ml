open Consensus_anxor
open Consensus_util
module Pool = Consensus_engine.Pool
module Obs = Consensus_obs.Obs
module Cache = Consensus_cache.Cache

let algo_span ?(attrs = fun () -> []) name ~n f =
  Obs.with_span
    ~attrs:(fun () -> ("keys", Obs.Int n) :: attrs ())
    ("core.cluster." ^ name)
    f

type clustering = int array

type t = { db : Db.t; pool : Pool.t; keys : int array; w : float array array }

let make ?pool db =
  let pool = Pool.resolve pool in
  let keys = Db.keys db in
  let nk = Array.length keys in
  algo_span "make" ~n:nk @@ fun () ->
  (* The upper triangle of co-occurrence probabilities: independent pairwise
     joint computations, parallel over rows; mirrored sequentially. *)
  let compute () =
    let upper =
      Pool.parallel_init ~pool ~stage:"cluster_weights" nk (fun i ->
          Array.init (nk - i - 1) (fun d ->
              let j = i + 1 + d in
              let same_value =
                Db.key_pair_joint db keys.(i) keys.(j) ~f:(fun a b ->
                    a.Db.value = b.Db.value)
              in
              same_value +. Db.key_pair_absent db keys.(i) keys.(j)))
    in
    let w = Array.make_matrix nk nk 1. in
    Array.iteri
      (fun i row ->
        Array.iteri
          (fun d p ->
            let j = i + 1 + d in
            w.(i).(j) <- p;
            w.(j).(i) <- p)
          row)
      upper;
    w
  in
  let w =
    if not (Cache.enabled ()) then compute ()
    else
      let key =
        Cache.key ~family:"cluster_weights" ~digest:(Db.digest db) ~params:[]
      in
      match Cache.memo key (fun () -> Cache.Matrix (compute ())) with
      | Cache.Matrix m -> m
      | _ -> assert false
  in
  { db; pool; keys; w }

let db t = t.db
let pool t = t.pool
let num_keys t = Array.length t.keys
let weight t i j = t.w.(i).(j)

let expected_dist t c =
  let nk = num_keys t in
  if Array.length c <> nk then
    invalid_arg "Cluster_consensus.expected_dist: wrong clustering size";
  let acc = ref 0. in
  for i = 0 to nk - 1 do
    for j = i + 1 to nk - 1 do
      if c.(i) = c.(j) then acc := !acc +. (1. -. t.w.(i).(j))
      else acc := !acc +. t.w.(i).(j)
    done
  done;
  !acc

let pivot rng t =
  let nk = num_keys t in
  let labels = Array.make nk (-1) in
  let unassigned = ref (List.init nk Fun.id) in
  let next_label = ref 0 in
  while !unassigned <> [] do
    let arr = Array.of_list !unassigned in
    let p = arr.(Prng.int rng (Array.length arr)) in
    let label = !next_label in
    incr next_label;
    labels.(p) <- label;
    let rest =
      List.filter
        (fun i ->
          if i = p then false
          else if t.w.(i).(p) > 0.5 then begin
            labels.(i) <- label;
            false
          end
          else true)
        !unassigned
    in
    unassigned := rest
  done;
  labels

let best_pivot_of rng ~trials t =
  if trials <= 0 then invalid_arg "Cluster_consensus.best_pivot_of: trials must be positive";
  algo_span "best_pivot_of" ~n:(num_keys t)
    ~attrs:(fun () -> [ ("trials", Obs.Int trials) ])
  @@ fun () ->
  let best = ref None in
  for _ = 1 to trials do
    let c = pivot rng t in
    let d = expected_dist t c in
    match !best with
    | Some (_, bd) when bd <= d -> ()
    | _ -> best := Some (c, d)
  done;
  fst (Option.get !best)

let local_search t c0 =
  let nk = num_keys t in
  algo_span "local_search" ~n:nk @@ fun () ->
  let c = Array.copy c0 in
  (* Gain of assigning key i to label l: Σ_{j≠i} (together? 1-w : w). *)
  let cost_with label i =
    let acc = ref 0. in
    for j = 0 to nk - 1 do
      if j <> i then
        if c.(j) = label then acc := !acc +. (1. -. t.w.(i).(j))
        else acc := !acc +. t.w.(i).(j)
    done;
    !acc
  in
  let fresh_label () =
    let used = Array.fold_left (fun acc l -> max acc l) (-1) c in
    used + 1
  in
  let improved = ref true in
  while !improved do
    improved := false;
    Deadline.check_current ();
    for i = 0 to nk - 1 do
      let current = cost_with c.(i) i in
      let labels =
        fresh_label () :: (Array.to_list c |> List.sort_uniq compare)
      in
      let best =
        List.fold_left
          (fun (bl, bc) l ->
            if l = c.(i) then (bl, bc)
            else
              let cost = cost_with l i in
              if cost < bc -. 1e-12 then (l, cost) else (bl, bc))
          (c.(i), current) labels
      in
      if fst best <> c.(i) then begin
        c.(i) <- fst best;
        improved := true
      end
    done
  done;
  c

let clustering_of_world t world =
  let nk = num_keys t in
  let key_pos = Hashtbl.create nk in
  Array.iteri (fun i key -> Hashtbl.replace key_pos key i) t.keys;
  (* Labels: hash distinct values to dense ids; absent keys share label -1
     mapped to a dedicated cluster. *)
  let labels = Array.make nk (-1) in
  let value_label = Hashtbl.create 16 in
  let next = ref 0 in
  List.iter
    (fun (a : Db.alt) ->
      match Hashtbl.find_opt key_pos a.key with
      | None -> ()
      | Some i ->
          let l =
            match Hashtbl.find_opt value_label a.value with
            | Some l -> l
            | None ->
                let l = !next in
                incr next;
                Hashtbl.replace value_label a.value l;
                l
          in
          labels.(i) <- l)
    world;
  (* absent cluster *)
  let absent_label = !next in
  Array.map (fun l -> if l = -1 then absent_label else l) labels

let best_of_worlds rng ~samples t =
  if samples <= 0 then invalid_arg "Cluster_consensus.best_of_worlds: samples must be positive";
  algo_span "best_of_worlds" ~n:(num_keys t)
    ~attrs:(fun () -> [ ("samples", Obs.Int samples) ])
  @@ fun () ->
  (* Derive one child generator per sample sequentially, then sample and
     score in parallel: the drawn worlds — hence the answer — depend only on
     [rng] and [samples], not on the pool's [jobs] setting. *)
  let rngs = Array.init samples (fun _ -> Prng.split rng) in
  let scored =
    Pool.parallel_map ~pool:t.pool ~stage:"cluster_sampling"
      (fun g ->
        let c = clustering_of_world t (Worlds.sample g (Db.tree t.db)) in
        (c, expected_dist t c))
      rngs
  in
  let best = ref None in
  Array.iter
    (fun (c, d) ->
      match !best with
      | Some (_, bd) when bd <= d -> ()
      | _ -> best := Some (c, d))
    scored;
  fst (Option.get !best)

let distance c1 c2 =
  let n = Array.length c1 in
  if Array.length c2 <> n then
    invalid_arg "Cluster_consensus.distance: size mismatch";
  let count = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let t1 = c1.(i) = c1.(j) and t2 = c2.(i) = c2.(j) in
      if t1 <> t2 then incr count
    done
  done;
  !count

let normalize c =
  let mapping = Hashtbl.create 16 in
  let next = ref 0 in
  Array.map
    (fun l ->
      match Hashtbl.find_opt mapping l with
      | Some l' -> l'
      | None ->
          let l' = !next in
          incr next;
          Hashtbl.replace mapping l l';
          l')
    c

let brute_force t =
  let nk = num_keys t in
  if nk > 10 then invalid_arg "Cluster_consensus.brute_force: too many keys";
  (* Enumerate set partitions in restricted-growth-string form. *)
  let best = ref None in
  let labels = Array.make nk 0 in
  let rec go i max_label =
    if i = nk then begin
      let d = expected_dist t labels in
      match !best with
      | Some (_, bd) when bd <= d -> ()
      | _ -> best := Some (Array.copy labels, d)
    end
    else
      for l = 0 to max_label + 1 do
        labels.(i) <- l;
        go (i + 1) (max max_label l)
      done
  in
  go 0 (-1);
  Option.get !best

let enum_expected_dist t c =
  Worlds.enumerate (Db.tree t.db)
  |> List.fold_left
       (fun acc (p, w) ->
         acc +. (p *. float_of_int (distance c (clustering_of_world t w))))
       0.
