open Consensus_anxor
open Consensus_poly

type t = {
  db : Db.t;
  group : Db.alt -> int;
  m : int;
  mean : float array;
  variance : float;
}

let compute_mean db group m =
  let r = Array.make m 0. in
  for l = 0 to Db.num_alts db - 1 do
    let v = group (Db.alt db l) in
    r.(v) <- r.(v) +. Db.marginal db l
  done;
  r

(* Var(r_v) = Σ_{i,j in group v} (Pr(i ∧ j) - Pr(i)·Pr(j)); the diagonal
   term is Pr(i)(1 - Pr(i)).  Exact under arbitrary correlation. *)
let compute_variance db group m =
  let members = Array.make m [] in
  for l = 0 to Db.num_alts db - 1 do
    let v = group (Db.alt db l) in
    members.(v) <- l :: members.(v)
  done;
  let acc = ref 0. in
  Array.iter
    (fun leaves ->
      List.iter
        (fun i ->
          List.iter
            (fun j ->
              let joint = Db.pair_marginal db i j in
              acc := !acc +. (joint -. (Db.marginal db i *. Db.marginal db j)))
            leaves)
        leaves)
    members;
  !acc

let make db ~group ~num_groups =
  if num_groups <= 0 then invalid_arg "Aggregate_tree.make: num_groups must be positive";
  for l = 0 to Db.num_alts db - 1 do
    let v = group (Db.alt db l) in
    if v < 0 || v >= num_groups then
      invalid_arg "Aggregate_tree.make: group label out of range"
  done;
  {
    db;
    group;
    m = num_groups;
    mean = compute_mean db group num_groups;
    variance = compute_variance db group num_groups;
  }

let db t = t.db
let num_groups t = t.m
let mean t = Array.copy t.mean
let variance t = t.variance

let expected_sq_dist t c =
  if Array.length c <> t.m then
    invalid_arg "Aggregate_tree.expected_sq_dist: dimension mismatch";
  let bias = ref 0. in
  Array.iteri (fun v cv -> bias := !bias +. ((cv -. t.mean.(v)) ** 2.)) c;
  !bias +. t.variance

let counts_of_world t world =
  let r = Array.make t.m 0. in
  List.iter (fun a -> r.(t.group a) <- r.(t.group a) +. 1.) world;
  r

let median_sampled rng ~samples t =
  if samples <= 0 then invalid_arg "Aggregate_tree.median_sampled: samples must be positive";
  let best = ref None in
  for _ = 1 to samples do
    let c = counts_of_world t (Worlds.sample rng (Db.tree t.db)) in
    let d = expected_sq_dist t c in
    match !best with
    | Some (_, bd) when bd <= d -> ()
    | _ -> best := Some (c, d)
  done;
  fst (Option.get !best)

let brute_force_median t =
  Worlds.enumerate (Db.tree t.db)
  |> List.fold_left
       (fun acc (p, w) ->
         if p <= 0. then acc
         else
           let c = counts_of_world t w in
           let d = expected_sq_dist t c in
           match acc with
           | Some (_, bd) when bd <= d -> acc
           | _ -> Some (c, d))
       None
  |> Option.get

let joint_distribution t =
  Genfunc.mpoly (fun a -> Mpoly.var (t.group a)) (Db.tree t.db)
