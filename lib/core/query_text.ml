module Api = Engine_api

let ( let* ) = Result.bind

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let opts_of tokens =
  List.fold_left
    (fun acc tok ->
      let* acc = acc in
      match String.index_opt tok '=' with
      | Some i when i > 0 ->
          let key = String.sub tok 0 i in
          let value = String.sub tok (i + 1) (String.length tok - i - 1) in
          if List.mem_assoc key acc then Error (Printf.sprintf "duplicate option '%s'" key)
          else Ok ((key, value) :: acc)
      | _ -> Error (Printf.sprintf "malformed option '%s' (expected key=value)" tok))
    (Ok []) tokens

(* Consume an option: parsing fails on options that the family ignores, so a
   typo'd line never silently runs a different query than intended. *)
let take opts key =
  let v = List.assoc_opt key !opts in
  opts := List.remove_assoc key !opts;
  v

let check_consumed opts =
  match !opts with
  | [] -> Ok ()
  | (key, _) :: _ -> Error (Printf.sprintf "unknown option '%s'" key)

let int_of key v =
  match int_of_string_opt v with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "option '%s': not an integer: '%s'" key v)

let flavor_of opts =
  match take opts "flavor" with
  | None | Some "mean" -> Ok Api.Mean
  | Some "median" -> Ok Api.Median
  | Some other -> Error (Printf.sprintf "unknown flavor '%s'" other)

let parse_family family opts =
  match family with
  | "world" ->
      let* metric =
        match take opts "metric" with
        | None | Some "symdiff" -> Ok Api.Set_sym_diff
        | Some "jaccard" -> Ok Api.Set_jaccard
        | Some other -> Error (Printf.sprintf "unknown world metric '%s'" other)
      in
      let* flavor = flavor_of opts in
      Ok (Api.World (metric, flavor))
  | "topk" ->
      let* k =
        match take opts "k" with None -> Ok 10 | Some v -> int_of "k" v
      in
      let* metric =
        match take opts "metric" with
        | None | Some "symdiff" -> Ok Api.Sym_diff
        | Some "intersection" -> Ok Api.Intersection
        | Some "footrule" -> Ok Api.Footrule
        | Some "kendall" -> Ok Api.Kendall
        | Some other -> Error (Printf.sprintf "unknown topk metric '%s'" other)
      in
      let* flavor = flavor_of opts in
      Ok (Api.Topk (k, metric, flavor))
  | "rank" ->
      let* metric =
        match take opts "metric" with
        | None | Some "footrule" -> Ok Api.Rank_footrule
        | Some "kendall" -> Ok Api.Rank_kendall
        | Some other -> Error (Printf.sprintf "unknown rank metric '%s'" other)
      in
      Ok (Api.Rank metric)
  | "cluster" ->
      let* trials =
        match take opts "trials" with None -> Ok 8 | Some v -> int_of "trials" v
      in
      let* samples =
        match take opts "samples" with
        | None -> Ok None
        | Some v ->
            let* n = int_of "samples" v in
            Ok (Some n)
      in
      Ok (Api.Cluster { trials; samples })
  | other -> Error (Printf.sprintf "unknown query family '%s'" other)

type proto = Db_query of Api.query | Aggregate_query of Api.flavor

let parse_proto_family family opts =
  match family with
  | "aggregate" ->
      let* flavor = flavor_of opts in
      Ok (Aggregate_query flavor)
  | _ ->
      let* query = parse_family family opts in
      Ok (Db_query query)

let parse_proto_line line =
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match split_ws line with
  | [] -> Ok None
  | family :: rest ->
      let* opts = opts_of rest in
      let opts = ref opts in
      let* proto = parse_proto_family family opts in
      let* () = check_consumed opts in
      Ok (Some proto)

let parse_line line =
  match parse_proto_line line with
  | Ok (Some (Db_query q)) -> Ok (Some q)
  | Ok (Some (Aggregate_query _)) ->
      Error
        "aggregate queries take a matrix, not the shared database (batch \
         files cannot carry one)"
  | Ok None -> Ok None
  | Error _ as e -> e

let parse_string contents =
  String.split_on_char '\n' contents
  |> List.mapi (fun i line -> (i + 1, line))
  |> List.fold_left
       (fun acc (lineno, line) ->
         let* acc = acc in
         match parse_line line with
         | Ok None -> Ok acc
         | Ok (Some q) -> Ok (q :: acc)
         | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
       (Ok [])
  |> Result.map List.rev

(* Rendering: [unparse q] produces a line [parse_line] reads back as [q]
   (aggregate excepted — its matrix travels out of band; the oracle corpus
   format appends it after the query line). *)
let unparse (q : Api.query) =
  let flavor f = Printf.sprintf "flavor=%s" (Api.flavor_name f) in
  match q with
  | Api.World (metric, f) ->
      Printf.sprintf "world metric=%s %s"
        (match metric with Api.Set_sym_diff -> "symdiff" | Api.Set_jaccard -> "jaccard")
        (flavor f)
  | Api.Topk (k, metric, f) ->
      Printf.sprintf "topk k=%d metric=%s %s" k
        (match metric with
        | Api.Sym_diff -> "symdiff"
        | Api.Intersection -> "intersection"
        | Api.Footrule -> "footrule"
        | Api.Kendall -> "kendall")
        (flavor f)
  | Api.Rank metric ->
      Printf.sprintf "rank metric=%s"
        (match metric with Api.Rank_footrule -> "footrule" | Api.Rank_kendall -> "kendall")
  | Api.Aggregate (_, f) -> Printf.sprintf "aggregate %s" (flavor f)
  | Api.Cluster { trials; samples } ->
      Printf.sprintf "cluster trials=%d%s" trials
        (match samples with None -> "" | Some s -> Printf.sprintf " samples=%d" s)

let print_proto = function
  | Db_query q -> unparse q
  | Aggregate_query f -> Printf.sprintf "aggregate flavor=%s" (Api.flavor_name f)

let proto_of_query = function
  | Api.Aggregate (_, f) -> Aggregate_query f
  | q -> Db_query q
