(** Group-by count consensus over {e correlated} tuples (extension of §6.1).

    The paper's aggregate model assumes independent, always-present tuples;
    here the tuples live in an arbitrary and/xor tree and each alternative
    carries a group label.  The answer is still the per-group count vector
    under the squared L2 distance.

    What survives the generalization exactly:
    - the mean answer is still the expected count vector (linearity);
    - the expected distance of {e any} candidate [c] still decomposes as
      [‖c − r̄‖² + Σ_v Var(r_v)], with the variances computed from pairwise
      leaf marginals (no independence needed);
    - the joint count distribution is a multivariate generating function
      (Theorem 1).

    The median (closest {e possible} vector) loses the matching structure
    of Lemma 3 — possible count vectors of a correlated tree do not form a
    matroid-like family — so it is approximated by best-of-sampled-worlds
    and validated against enumeration on small instances. *)

open Consensus_anxor

type t

val make : Db.t -> group:(Db.alt -> int) -> num_groups:int -> t
(** Group labels must lie in [\[0, num_groups)]. *)

val db : t -> Db.t
val num_groups : t -> int

val mean : t -> float array
(** Expected count per group. *)

val variance : t -> float
(** [Σ_v Var(r_v)], exact under correlation via pairwise marginals. *)

val expected_sq_dist : t -> float array -> float
(** Exact [E‖c − r‖²] for any real vector [c]. *)

val counts_of_world : t -> Db.alt list -> float array

val median_sampled :
  Consensus_util.Prng.t -> samples:int -> t -> float array
(** Best count vector among sampled possible worlds, scored with the exact
    {!expected_sq_dist}. *)

val brute_force_median : t -> float array * float
(** Exact median by world enumeration (small trees). *)

val joint_distribution : t -> Consensus_poly.Mpoly.t
(** Joint group-count generating function: the coefficient of
    [Π_v x_v^{c_v}] is [Pr(count vector = c)] (Theorem 1 with one variable
    per group).  Exponential in the worst case; intended for small/medium
    instances. *)
