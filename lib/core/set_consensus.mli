(** Consensus worlds under set distance measures (paper §4).

    A {e world answer} is a set of tuple alternatives, represented by the
    sorted list of their leaf indices in the database's and/xor tree.  The
    {e mean world} minimizes the expected distance to the random possible
    world over all leaf subsets; the {e median world} minimizes it over the
    possible worlds only. *)

open Consensus_anxor

type world = int list
(** Sorted leaf indices. *)

val forced_marginal : float -> bool
(** True iff a marginal probability (or xor-block mass) is within
    [Consensus_util.Fcmp] tolerance of 1, i.e. the tuple (or block) is
    treated as present in every possible world.  This single predicate
    backs the forced-tuple classification of {!median_jaccard},
    {!median_jaccard_bid} and {!median_sym_diff} — previously the
    independent and BID paths used different ad-hoc epsilons ([1e-12]
    vs [1e-9]) and could classify the same near-certain tuple
    differently. *)

(** {1 Symmetric difference (§4.1)} *)

val expected_sym_diff : Db.t -> world -> float
(** Closed-form [E(|W Δ pw|) = Σ_{t∈W} (1 - Pr t) + Σ_{t∉W} Pr t]. *)

val mean_sym_diff : Db.t -> world
(** Theorem 2: the leaves with marginal probability > 1/2.  Valid under
    {e any} correlation model. *)

val median_sym_diff : Db.t -> world
(** Exact median world under symmetric difference for and/xor trees, by a
    linear-time tree DP minimizing [Σ_{t∈W}(1 - 2·Pr t)] over possible
    worlds.  By Corollary 1 this coincides with {!mean_sym_diff} whenever
    that set is a possible world (ties aside). *)

(** {1 Jaccard distance (§4.2)} *)

val expected_jaccard : Db.t -> world -> float
(** Lemma 1: exact [E d_J(W, pw)] via a bivariate generating function with
    [x] on the leaves of [W] and [y] elsewhere; the coefficient of [x^i y^j]
    weights distance [(|W| - i + j) / (|W| + j)].  [d_J(∅, ∅) = 0]. *)

val mean_jaccard : Db.t -> world
(** Lemma 2's algorithm: for a {e tuple-independent} database the mean world
    is a prefix of the tuples sorted by decreasing probability; evaluates
    all prefixes with {!expected_jaccard}.  Raises [Invalid_argument] if the
    database is not tuple-independent. *)

val median_jaccard : Db.t -> world
(** Median world under Jaccard for a {e tuple-independent} database: when
    every tuple probability lies strictly between 0 and 1 each subset is a
    possible world and the median coincides with {!mean_jaccard}; certain
    tuples (p = 1) are forced into every candidate and impossible ones
    (p = 0) are excluded, with the probability-sorted prefix sweep run on
    the rest.  Raises [Invalid_argument] if the database is not
    tuple-independent. *)

val median_jaccard_bid : Db.t -> world
(** Median world under Jaccard for a {e BID} database (§4.2): candidate
    worlds keep only the highest-probability alternative per key, forced
    keys (alternatives summing to 1) always included, optional keys added in
    decreasing probability order.  Raises [Invalid_argument] if the database
    is not BID. *)

(** {1 Enumeration oracles (tests / small instances)} *)

val brute_force_mean :
  dist:(Db.t -> world -> float) -> Db.t -> world * float
(** Argmin of the expected distance over {e all} 2ⁿ leaf subsets. *)

val brute_force_median :
  dist:(Db.t -> world -> float) -> Db.t -> world * float
(** Argmin over the possible worlds only. *)

val enum_expected_sym_diff : Db.t -> world -> float
(** Enumeration-based twin of {!expected_sym_diff} (test oracle). *)

val enum_expected_jaccard : Db.t -> world -> float
(** Enumeration-based twin of {!expected_jaccard} (test oracle). *)
