(** Unified typed entry point over every consensus family.

    [run db query] evaluates one consensus query against a probabilistic
    database on the multicore engine and returns a structured answer —
    replacing the ad-hoc per-module dispatch that each frontend used to
    re-implement.  The per-module APIs ({!Set_consensus},
    {!Topk_consensus}, {!Rank_consensus}, {!Aggregate_consensus},
    {!Cluster_consensus}) remain the fine-grained interface; this facade
    composes them with the standard algorithm choices of the CLI and the
    experiment harness.

    Accessible both as [Consensus.Engine_api] and under its short alias
    [Consensus.Api]. *)

open Consensus_anxor

module Cache = Consensus_cache.Cache
(** The shared probability cache behind every consensus family (re-exported
    so frontends can flip it with [Api.Cache.set_enabled], size it, and read
    {!Cache.stats} without depending on [consensus_cache] directly).
    Disabled by default; answers are bit-identical either way. *)

(** Detection statistics of the read-once lineage fast path (re-exported
    from [Consensus_pdb.Inference] so frontends can report which inference
    route served their queries without a direct pdb dependency). *)
module Readonce_stats : sig
  val read : unit -> int * int
  (** [(hits, misses)] of root-level read-once detection since the last
      {!reset}: a hit means the lineage probability was served entirely by
      the linear-time factored evaluation, a miss that it fell back to
      Shannon expansion. *)

  val reset : unit -> unit
  (** Reset the counters (also clears the Shannon-expansion tally). *)
end

exception Unsupported of string
(** Raised (with a human-readable reason) when the requested
    metric/flavor combination has no algorithm — e.g. median answers under
    the intersection, footrule or Kendall top-k metrics, whose median
    problems the paper leaves open (§5.3–§5.5).  Frontends should map this
    to a clean nonzero exit, not a crash. *)

(** {1 Typed errors and per-request options}

    The result-returning entry point {!run_result} is the preferred API for
    services and other callers that must not let evaluation exceptions
    escape: every expected failure comes back as a structured
    {!Error.t}.  {!run} remains the thin raising wrapper — existing callers
    compile unchanged.

    Migration: [Api.run db q] becomes
    [match Api.run_result db q with Ok a -> ... | Error e -> ...]; the
    former's [Unsupported] and [Invalid_argument] exceptions are the
    latter's [Error.Unsupported] and [Error.Invalid_input]. *)

module Error : sig
  type t =
    | Unsupported of string
        (** The metric/flavor combination has no algorithm (the exception
            {!Unsupported} carries the same reason string). *)
    | Deadline_exceeded
        (** The request's deadline passed (or it was cancelled) while
            evaluating; the cooperative checks in the engine pool and the
            sequential kernels abandoned the computation early. *)
    | Invalid_input of string
        (** Ill-formed query or database for this family (the
            [Invalid_argument] payload), e.g. non-distinct scores for a
            ranking query or a ragged aggregate matrix. *)

  val to_string : t -> string
  (** One-line human-readable rendering, e.g. ["deadline exceeded"]. *)
end

module Options : sig
  type t = {
    pool : Consensus_engine.Pool.t option;
        (** Engine pool carrying the parallel stages (wins over [jobs];
            default: the process-global pool). *)
    jobs : int option;
        (** When no [pool] is given, run on a private pool of this many
            slots, torn down after the request.  Spawning domains
            per-request is costly — prefer a shared [pool] in servers. *)
    rng : Consensus_util.Prng.t option;
        (** Randomness for the pivot/sampling algorithms (default seed
            42, fresh per call — so equal requests get equal answers). *)
    cache : bool;
        (** [false] bypasses the shared probability cache for this request
            only (see {!Cache.with_bypass}); the process-global switch is
            untouched.  Default [true]: whatever the switch says. *)
    deadline : float option;
        (** Wall-clock budget in seconds for this request.  [None]
            (default) inherits the ambient
            {!Consensus_util.Deadline} token — under the serve daemon the
            scheduler has already installed one. *)
    label : string option;
        (** Trace label attached to the request's root [api.run] span
            (shows up in explain plans and [/trace]). *)
  }

  val default : t
  (** No pool/jobs/rng/deadline/label overrides, cache on. *)

  val make :
    ?pool:Consensus_engine.Pool.t ->
    ?jobs:int ->
    ?rng:Consensus_util.Prng.t ->
    ?cache:bool ->
    ?deadline:float ->
    ?label:string ->
    unit ->
    t
end

(** {1 Queries} *)

type flavor = Mean | Median

type set_metric = Set_sym_diff | Set_jaccard

type topk_metric = Topk_consensus.metric =
  | Sym_diff
  | Intersection
  | Footrule
  | Kendall  (** re-export of {!Topk_consensus.metric} *)

type rank_metric = Rank_footrule | Rank_kendall

type query =
  | World of set_metric * flavor
      (** Consensus possible-world answer (§4).  Jaccard requires a
          tuple-independent (mean, median) or BID (median) database. *)
  | Topk of int * topk_metric * flavor
      (** Consensus top-k answer for the given [k] (§5).  Median is
          available for [Sym_diff] only (Theorem 4); other metrics raise
          {!Unsupported}. *)
  | Rank of rank_metric
      (** Consensus complete ranking (mean only; §7 extension).  Kendall
          uses the exact Kemeny DP up to 16 keys, pivot + local search
          beyond. *)
  | Aggregate of float array array * flavor
      (** Consensus group-by count vector (§6.1) of a row-stochastic
          tuple × group matrix.  The matrix is carried by the query; the
          [Db.t] argument of {!run} is not consulted. *)
  | Cluster of { trials : int; samples : int option }
      (** Consensus clustering (§6.2): best of [trials] CC-Pivot runs —
          and, when [samples] is given, of that many sampled worlds —
          improved by local search. *)

(** {1 Answers} *)

type answer =
  | World_answer of { leaves : int list; expected : (string * float) list }
      (** Leaf indices of the consensus world, plus its expected distance
          under each applicable set metric. *)
  | Topk_answer of { keys : int array; expected : (string * float) list }
      (** Ordered consensus top-k keys, with the expected distance under
          all four top-k metrics. *)
  | Rank_answer of { keys : int array; expected : (string * float) list }
      (** Consensus permutation of all keys and its expected distance
          under the requested metric. *)
  | Aggregate_answer of { counts : float array; expected : (string * float) list }
      (** Consensus count vector (integral for medians) and its expected
          squared L2 distance. *)
  | Cluster_answer of { labels : int array; expected : (string * float) list }
      (** Normalized cluster labels by key position and the expected
          number of pairwise disagreements. *)

val run :
  ?pool:Consensus_engine.Pool.t ->
  ?rng:Consensus_util.Prng.t ->
  ?label:string ->
  Db.t ->
  query ->
  answer
(** Evaluate a query.  [pool] (default: the global engine pool) carries
    every parallel stage; answers are identical whatever its [jobs]
    setting.  [rng] (default seed 42) drives the randomized algorithms
    (Kendall pivot, clustering).  [label] tags the root span (see
    {!Options.t.label}).  Raises {!Unsupported} for combinations without
    an algorithm, [Invalid_argument] for ill-formed inputs (e.g.
    non-distinct scores for ranking queries), and
    [Consensus_util.Deadline.Expired] if the ambient deadline passes
    mid-evaluation. *)

val run_result : ?options:Options.t -> Db.t -> query -> (answer, Error.t) result
(** Total variant of {!run}: evaluates under {!Options.t} and turns the
    expected failure modes into [Error _] instead of raising.  Exceptions
    that are neither {!Unsupported}, [Invalid_argument] nor
    [Deadline.Expired] (i.e. genuine bugs) still propagate. *)

(** {1 Oracle hooks}

    Helpers for the differential-testing subsystem ([lib/oracle]), which
    cross-checks {!run} against exhaustive possible-world enumeration. *)

val answer_expected : answer -> (string * float) list
(** The [expected] list of any answer, uniformly. *)

val target_metric : query -> string
(** The name (as used in [expected] lists) of the one metric the query
    optimizes — e.g. [Topk (_, Footrule, _)] reports four metrics but
    minimizes ["footrule"]. *)

val exact : Db.t -> query -> bool
(** True iff {!run} uses an exact algorithm for this query on this
    database, so its answer must attain the brute-force optimum; false for
    the approximation/heuristic paths (top-k Kendall mean via randomized
    KwikSort, clustering via CC-Pivot, full-ranking Kendall beyond the
    16-key exact-DP cutoff), whose answers are only bounded. *)

val enum_expected : ?pool:Consensus_engine.Pool.t -> Db.t -> query -> answer -> (string * float) list
(** Enumeration-based twin of the answer's [expected] list: the same metric
    names, each value recomputed by full possible-world enumeration instead
    of closed-form generating functions.  Exponential — small instances
    only.  Raises [Invalid_argument] if the answer is not from this query's
    family. *)

val flavor_name : flavor -> string

val query_name : query -> string
(** Short label of the query family and metric, e.g. ["topk-kendall-mean"]
    (for logs and stats output). *)
