(** Unified typed entry point over every consensus family.

    [run db query] evaluates one consensus query against a probabilistic
    database on the multicore engine and returns a structured answer —
    replacing the ad-hoc per-module dispatch that each frontend used to
    re-implement.  The per-module APIs ({!Set_consensus},
    {!Topk_consensus}, {!Rank_consensus}, {!Aggregate_consensus},
    {!Cluster_consensus}) remain the fine-grained interface; this facade
    composes them with the standard algorithm choices of the CLI and the
    experiment harness.

    Accessible both as [Consensus.Engine_api] and under its short alias
    [Consensus.Api]. *)

open Consensus_anxor

module Cache = Consensus_cache.Cache
(** The shared probability cache behind every consensus family (re-exported
    so frontends can flip it with [Api.Cache.set_enabled], size it, and read
    {!Cache.stats} without depending on [consensus_cache] directly).
    Disabled by default; answers are bit-identical either way. *)

exception Unsupported of string
(** Raised (with a human-readable reason) when the requested
    metric/flavor combination has no algorithm — e.g. median answers under
    the intersection, footrule or Kendall top-k metrics, whose median
    problems the paper leaves open (§5.3–§5.5).  Frontends should map this
    to a clean nonzero exit, not a crash. *)

(** {1 Queries} *)

type flavor = Mean | Median

type set_metric = Set_sym_diff | Set_jaccard

type topk_metric = Topk_consensus.metric =
  | Sym_diff
  | Intersection
  | Footrule
  | Kendall  (** re-export of {!Topk_consensus.metric} *)

type rank_metric = Rank_footrule | Rank_kendall

type query =
  | World of set_metric * flavor
      (** Consensus possible-world answer (§4).  Jaccard requires a
          tuple-independent (mean, median) or BID (median) database. *)
  | Topk of int * topk_metric * flavor
      (** Consensus top-k answer for the given [k] (§5).  Median is
          available for [Sym_diff] only (Theorem 4); other metrics raise
          {!Unsupported}. *)
  | Rank of rank_metric
      (** Consensus complete ranking (mean only; §7 extension).  Kendall
          uses the exact Kemeny DP up to 16 keys, pivot + local search
          beyond. *)
  | Aggregate of float array array * flavor
      (** Consensus group-by count vector (§6.1) of a row-stochastic
          tuple × group matrix.  The matrix is carried by the query; the
          [Db.t] argument of {!run} is not consulted. *)
  | Cluster of { trials : int; samples : int option }
      (** Consensus clustering (§6.2): best of [trials] CC-Pivot runs —
          and, when [samples] is given, of that many sampled worlds —
          improved by local search. *)

(** {1 Answers} *)

type answer =
  | World_answer of { leaves : int list; expected : (string * float) list }
      (** Leaf indices of the consensus world, plus its expected distance
          under each applicable set metric. *)
  | Topk_answer of { keys : int array; expected : (string * float) list }
      (** Ordered consensus top-k keys, with the expected distance under
          all four top-k metrics. *)
  | Rank_answer of { keys : int array; expected : (string * float) list }
      (** Consensus permutation of all keys and its expected distance
          under the requested metric. *)
  | Aggregate_answer of { counts : float array; expected : (string * float) list }
      (** Consensus count vector (integral for medians) and its expected
          squared L2 distance. *)
  | Cluster_answer of { labels : int array; expected : (string * float) list }
      (** Normalized cluster labels by key position and the expected
          number of pairwise disagreements. *)

val run : ?pool:Consensus_engine.Pool.t -> ?rng:Consensus_util.Prng.t -> Db.t -> query -> answer
(** Evaluate a query.  [pool] (default: the global engine pool) carries
    every parallel stage; answers are identical whatever its [jobs]
    setting.  [rng] (default seed 42) drives the randomized algorithms
    (Kendall pivot, clustering).  Raises {!Unsupported} for combinations
    without an algorithm and [Invalid_argument] for ill-formed inputs
    (e.g. non-distinct scores for ranking queries). *)

(** {1 Oracle hooks}

    Helpers for the differential-testing subsystem ([lib/oracle]), which
    cross-checks {!run} against exhaustive possible-world enumeration. *)

val answer_expected : answer -> (string * float) list
(** The [expected] list of any answer, uniformly. *)

val target_metric : query -> string
(** The name (as used in [expected] lists) of the one metric the query
    optimizes — e.g. [Topk (_, Footrule, _)] reports four metrics but
    minimizes ["footrule"]. *)

val exact : Db.t -> query -> bool
(** True iff {!run} uses an exact algorithm for this query on this
    database, so its answer must attain the brute-force optimum; false for
    the approximation/heuristic paths (top-k Kendall mean via randomized
    KwikSort, clustering via CC-Pivot, full-ranking Kendall beyond the
    16-key exact-DP cutoff), whose answers are only bounded. *)

val enum_expected : ?pool:Consensus_engine.Pool.t -> Db.t -> query -> answer -> (string * float) list
(** Enumeration-based twin of the answer's [expected] list: the same metric
    names, each value recomputed by full possible-world enumeration instead
    of closed-form generating functions.  Exponential — small instances
    only.  Raises [Invalid_argument] if the answer is not from this query's
    family. *)

val flavor_name : flavor -> string

val query_name : query -> string
(** Short label of the query family and metric, e.g. ["topk-kendall-mean"]
    (for logs and stats output). *)
