open Consensus_anxor
module Cache = Consensus_cache.Cache
module Obs = Consensus_obs.Obs

module Readonce_stats = struct
  let read () = Consensus_pdb.Inference.readonce_stats ()
  let reset () = Consensus_pdb.Inference.stats_reset ()
end
module Pool = Consensus_engine.Pool
module Prng = Consensus_util.Prng
module Deadline = Consensus_util.Deadline

exception Unsupported of string

module Error = struct
  type t =
    | Unsupported of string
    | Deadline_exceeded
    | Invalid_input of string

  let to_string = function
    | Unsupported reason -> "unsupported: " ^ reason
    | Deadline_exceeded -> "deadline exceeded"
    | Invalid_input reason -> "invalid input: " ^ reason
end

module Options = struct
  type t = {
    pool : Pool.t option;
    jobs : int option;
    rng : Prng.t option;
    cache : bool;
    deadline : float option;
    label : string option;
  }

  let default =
    {
      pool = None;
      jobs = None;
      rng = None;
      cache = true;
      deadline = None;
      label = None;
    }

  let make ?pool ?jobs ?rng ?(cache = true) ?deadline ?label () =
    { pool; jobs; rng; cache; deadline; label }
end

type flavor = Mean | Median

type set_metric = Set_sym_diff | Set_jaccard

type topk_metric = Topk_consensus.metric =
  | Sym_diff
  | Intersection
  | Footrule
  | Kendall

type rank_metric = Rank_footrule | Rank_kendall

type query =
  | World of set_metric * flavor
  | Topk of int * topk_metric * flavor
  | Rank of rank_metric
  | Aggregate of float array array * flavor
  | Cluster of { trials : int; samples : int option }

type answer =
  | World_answer of { leaves : int list; expected : (string * float) list }
  | Topk_answer of { keys : int array; expected : (string * float) list }
  | Rank_answer of { keys : int array; expected : (string * float) list }
  | Aggregate_answer of { counts : float array; expected : (string * float) list }
  | Cluster_answer of { labels : int array; expected : (string * float) list }

let flavor_name = function Mean -> "mean" | Median -> "median"

let set_metric_name = function
  | Set_sym_diff -> "symdiff"
  | Set_jaccard -> "jaccard"

let topk_metric_name = function
  | Sym_diff -> "symdiff"
  | Intersection -> "intersection"
  | Footrule -> "footrule"
  | Kendall -> "kendall"

let rank_metric_name = function
  | Rank_footrule -> "footrule"
  | Rank_kendall -> "kendall"

let query_name = function
  | World (m, f) -> Printf.sprintf "world-%s-%s" (set_metric_name m) (flavor_name f)
  | Topk (_, m, f) ->
      Printf.sprintf "topk-%s-%s" (topk_metric_name m) (flavor_name f)
  | Rank m -> Printf.sprintf "rank-%s-mean" (rank_metric_name m)
  | Aggregate (_, f) -> Printf.sprintf "aggregate-%s" (flavor_name f)
  | Cluster _ -> "cluster-mean"

let run_world db metric flavor =
  let leaves =
    match (metric, flavor) with
    | Set_sym_diff, Mean -> Set_consensus.mean_sym_diff db
    | Set_sym_diff, Median -> Set_consensus.median_sym_diff db
    | Set_jaccard, Mean -> Set_consensus.mean_jaccard db
    | Set_jaccard, Median ->
        if Db.is_independent db then Set_consensus.median_jaccard db
        else Set_consensus.median_jaccard_bid db
  in
  World_answer
    {
      leaves;
      expected =
        [
          ("symdiff", Set_consensus.expected_sym_diff db leaves);
          ("jaccard", Set_consensus.expected_jaccard db leaves);
        ];
    }

let run_topk ?pool ~rng db k metric flavor =
  (match (metric, flavor) with
  | (Intersection | Footrule | Kendall), Median ->
      raise
        (Unsupported
           (Printf.sprintf
              "median not supported for the %s metric: the paper's top-k \
               median algorithm covers the symmetric-difference metric only \
               (Theorem 4)"
              (topk_metric_name metric)))
  | _ -> ());
  let ctx = Topk_consensus.make_ctx ?pool db ~k in
  let keys =
    match (metric, flavor) with
    | Sym_diff, Mean -> Topk_consensus.mean_sym_diff ctx
    | Sym_diff, Median -> Topk_consensus.median_sym_diff ctx
    | Intersection, Mean -> Topk_consensus.mean_intersection ctx
    | Footrule, Mean -> Topk_consensus.mean_footrule ctx
    | Kendall, Mean -> Topk_consensus.mean_kendall_pivot rng ctx
    | (Intersection | Footrule | Kendall), Median -> assert false
  in
  Topk_answer
    {
      keys;
      expected =
        [
          ("symdiff", Topk_consensus.expected_sym_diff ctx keys);
          ("intersection", Topk_consensus.expected_intersection ctx keys);
          ("footrule", Topk_consensus.expected_footrule ctx keys);
          ("kendall", Topk_consensus.expected_kendall ctx keys);
        ];
    }

let run_rank ?pool ~rng db metric =
  let ctx = Rank_consensus.make_ctx ?pool db in
  let keys, d =
    match metric with
    | Rank_footrule -> Rank_consensus.mean_footrule ctx
    | Rank_kendall ->
        if Array.length (Rank_consensus.keys ctx) <= 16 then
          Rank_consensus.mean_kendall_exact ctx
        else Rank_consensus.mean_kendall_pivot rng ctx
  in
  Rank_answer { keys; expected = [ (rank_metric_name metric, d) ] }

let run_aggregate probs flavor =
  let inst = Aggregate_consensus.create probs in
  let counts =
    match flavor with
    | Mean -> Aggregate_consensus.mean inst
    | Median -> snd (Aggregate_consensus.median inst)
  in
  Aggregate_answer
    {
      counts;
      expected = [ ("sq_dist", Aggregate_consensus.expected_sq_dist inst counts) ];
    }

let run_cluster ?pool ~rng db ~trials ~samples =
  let t = Cluster_consensus.make ?pool db in
  let candidates =
    Cluster_consensus.local_search t (Cluster_consensus.best_pivot_of rng ~trials t)
    ::
    (match samples with
    | None -> []
    | Some samples ->
        [
          Cluster_consensus.local_search t
            (Cluster_consensus.best_of_worlds rng ~samples t);
        ])
  in
  let labels, d =
    List.map (fun c -> (c, Cluster_consensus.expected_dist t c)) candidates
    |> List.fold_left
         (fun acc (c, d) ->
           match acc with Some (_, bd) when bd <= d -> acc | _ -> Some (c, d))
         None
    |> Option.get
  in
  Cluster_answer
    {
      labels = Cluster_consensus.normalize labels;
      expected = [ ("disagreements", d) ];
    }

(* ---------- oracle hooks ----------

   [lib/oracle] cross-checks [run] against exhaustive enumeration; the
   helpers below give it a uniform view of a query's answer without
   per-family pattern matching at every call site. *)

let answer_expected = function
  | World_answer { expected; _ }
  | Topk_answer { expected; _ }
  | Rank_answer { expected; _ }
  | Aggregate_answer { expected; _ }
  | Cluster_answer { expected; _ } ->
      expected

let target_metric = function
  | World (m, _) -> set_metric_name m
  | Topk (_, m, _) -> topk_metric_name m
  | Rank m -> rank_metric_name m
  | Aggregate _ -> "sq_dist"
  | Cluster _ -> "disagreements"

let exact db query =
  match query with
  | World _ | Aggregate _ -> true
  | Topk (_, (Sym_diff | Intersection | Footrule), _) -> true
  | Topk (_, Kendall, Median) -> true (* raises Unsupported before answering *)
  | Topk (_, Kendall, Mean) -> false (* KwikSort pivot + local search *)
  | Rank Rank_footrule -> true
  | Rank Rank_kendall -> Db.num_keys db <= 16 (* exact Kemeny DP cutoff *)
  | Cluster _ -> false (* CC-Pivot + local search *)

let enum_expected ?pool db query answer =
  match (query, answer) with
  | World _, World_answer { leaves; _ } ->
      [
        ("symdiff", Set_consensus.enum_expected_sym_diff db leaves);
        ("jaccard", Set_consensus.enum_expected_jaccard db leaves);
      ]
  | Topk (k, _, _), Topk_answer { keys; _ } ->
      let ctx = Topk_consensus.make_ctx ?pool db ~k in
      List.map
        (fun (name, metric) -> (name, Topk_consensus.enum_expected ctx metric keys))
        [
          ("symdiff", Sym_diff);
          ("intersection", Intersection);
          ("footrule", Footrule);
          ("kendall", Kendall);
        ]
  | Rank metric, Rank_answer { keys; _ } ->
      let ctx = Rank_consensus.make_ctx ?pool db in
      let d =
        match metric with
        | Rank_footrule -> Rank_consensus.enum_expected_footrule ctx keys
        | Rank_kendall -> Rank_consensus.enum_expected_kendall ctx keys
      in
      [ (rank_metric_name metric, d) ]
  | Aggregate (probs, _), Aggregate_answer { counts; _ } ->
      let inst = Aggregate_consensus.create probs in
      [ ("sq_dist", Aggregate_consensus.enum_expected_sq_dist inst counts) ]
  | Cluster _, Cluster_answer { labels; _ } ->
      let t = Cluster_consensus.make ?pool db in
      [ ("disagreements", Cluster_consensus.enum_expected_dist t labels) ]
  | _ ->
      invalid_arg "Engine_api.enum_expected: answer does not match the query family"

let run ?pool ?rng ?label db query =
  let rng = match rng with Some g -> g | None -> Prng.create ~seed:42 () in
  (* The per-query root span: explain plans ([Obs.Report]) anchor wall time
     and GC attribution here, so every family funnels through it. *)
  Obs.with_span
    ~attrs:(fun () ->
      let base =
        [
          ("query", Obs.Str (query_name query));
          ("keys", Obs.Int (Db.num_keys db));
        ]
      in
      match label with None -> base | Some l -> ("label", Obs.Str l) :: base)
    "api.run"
  @@ fun () ->
  match query with
  | World (metric, flavor) -> run_world db metric flavor
  | Topk (k, metric, flavor) -> run_topk ?pool ~rng db k metric flavor
  | Rank metric -> run_rank ?pool ~rng db metric
  | Aggregate (probs, flavor) -> run_aggregate probs flavor
  | Cluster { trials; samples } -> run_cluster ?pool ~rng db ~trials ~samples

let run_result ?(options = Options.default) db query =
  let eval pool =
    run ?pool ?rng:options.Options.rng ?label:options.Options.label db query
  in
  (* An explicit [pool] wins over [jobs]; [jobs] spins up (and tears down) a
     private pool for this one request; otherwise the ambient default. *)
  let with_pool k =
    match (options.Options.pool, options.Options.jobs) with
    | (Some _ as pool), _ -> k pool
    | None, Some jobs -> Pool.with_pool ~jobs (fun pool -> k (Some pool))
    | None, None -> k None
  in
  (* [deadline = None] inherits the ambient token (the serve scheduler
     installs one per request); installing a fresh infinite token here would
     mask it and defeat daemon-side enforcement. *)
  let with_deadline f =
    match options.Options.deadline with
    | None -> f ()
    | Some budget ->
        let token = Deadline.after budget in
        Deadline.with_current token (fun () ->
            Deadline.check token;
            f ())
  in
  let with_cache f =
    if options.Options.cache then f () else Cache.with_bypass true f
  in
  match with_deadline (fun () -> with_cache (fun () -> with_pool eval)) with
  | answer -> Ok answer
  | exception Unsupported reason -> Result.Error (Error.Unsupported reason)
  | exception Deadline.Expired -> Result.Error Error.Deadline_exceeded
  | exception Invalid_argument reason ->
      Result.Error (Error.Invalid_input reason)
