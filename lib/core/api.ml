(* Short alias: [Consensus.Api] is the facade's public name; the
   implementation lives in [Engine_api]. *)
include Engine_api
