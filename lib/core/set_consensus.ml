open Consensus_poly
open Consensus_anxor
module Fcmp = Consensus_util.Fcmp
module Obs = Consensus_obs.Obs

(* Shared forced-tuple test: a marginal (or block mass) within Fcmp
   tolerance of 1 denotes a tuple present in every possible world.  Both
   Jaccard median algorithms and the sym-diff tree DP route through this one
   predicate so the independent and BID paths classify identically. *)
let forced_marginal m = Fcmp.geq m 1.

let algo_span name db f =
  Obs.with_span
    ~attrs:(fun () -> [ ("alts", Obs.Int (Db.num_alts db)) ])
    ("core.set." ^ name)
    f

type world = int list

(* ---------- symmetric difference ---------- *)

let expected_sym_diff db w =
  let n = Db.num_alts db in
  let in_w = Array.make n false in
  List.iter (fun i -> in_w.(i) <- true) w;
  let acc = ref 0. in
  for i = 0 to n - 1 do
    let m = Db.marginal db i in
    acc := !acc +. (if in_w.(i) then 1. -. m else m)
  done;
  !acc

let mean_sym_diff db =
  algo_span "mean_sym_diff" db @@ fun () ->
  let n = Db.num_alts db in
  List.init n Fun.id |> List.filter (fun i -> Db.marginal db i > 0.5)

let median_sym_diff db =
  algo_span "median_sym_diff" db @@ fun () ->
  (* Minimize Σ_{t∈W} (1 - 2 m_t) over possible worlds W: a leaf pays its
     inclusion gain; an xor node chooses its best child or the empty set
     when allowed; an and node sums its children. *)
  let m i = Db.marginal db i in
  (* (best cost, chosen leaves) per subtree; None = subtree cannot produce
     the empty set and has no leaves... every subtree produces something, so
     the result is always defined.  We also track whether the subtree can
     realize the empty set. *)
  let rec go (t : int Tree.t) : (float * world) * (float * world) option =
    (* returns (best over all realizable sets, best empty-realization if the
       subtree can produce ∅ — the latter always (0., []) when present) *)
    match t with
    | Tree.Leaf i -> ((1. -. (2. *. m i), [ i ]), None)
    | Tree.Xor edges ->
        let total = List.fold_left (fun acc (p, _) -> acc +. p) 0. edges in
        let residual_empty = not (forced_marginal total) in
        let child_results = List.map (fun (_, c) -> go c) edges in
        let empty_ok =
          residual_empty
          || List.exists (fun (_, e) -> e <> None) child_results
        in
        (* If the node cannot realize ∅ it has at least one edge, so the fold
           below always finds a finite best. *)
        let best =
          List.fold_left
            (fun acc (b, _) -> if fst b < fst acc then b else acc)
            (if empty_ok then (0., []) else (infinity, []))
            child_results
        in
        (best, if empty_ok then Some (0., []) else None)
    | Tree.And children ->
        let results = List.map go children in
        let cost = List.fold_left (fun acc ((c, _), _) -> acc +. c) 0. results in
        let leaves = List.concat_map (fun ((_, w), _) -> w) results in
        let empty =
          if List.for_all (fun (_, e) -> e <> None) results then Some (0., [])
          else None
        in
        ((cost, leaves), empty)
  in
  let (_, w), _ = go (Db.itree db) in
  List.sort compare w

(* ---------- Jaccard ---------- *)

let expected_jaccard db w =
  let in_w = Array.make (Db.num_alts db) false in
  List.iter (fun i -> in_w.(i) <- true) w;
  let size_w = List.length w in
  let f =
    Genfunc.bivariate
      (fun (i, _) -> if in_w.(i) then Poly2.x else Poly2.y)
      (Tree.indexed (Db.tree db))
  in
  (* coefficient of x^i y^j: Pr(|pw ∩ W| = i ∧ |pw \ W| = j);
     d_J = (|W| - i + j) / (|W| + j), with 0/0 = 0. *)
  Poly2.fold
    (fun i j c acc ->
      let num = float_of_int (size_w - i + j) in
      let den = float_of_int (size_w + j) in
      if den = 0. then acc else acc +. (c *. num /. den))
    f 0.

let mean_jaccard db =
  if not (Db.is_independent db) then
    invalid_arg "Set_consensus.mean_jaccard: requires a tuple-independent database";
  algo_span "mean_jaccard" db @@ fun () ->
  let n = Db.num_alts db in
  let order = Array.init n Fun.id in
  Array.sort (fun i j -> Float.compare (Db.marginal db j) (Db.marginal db i)) order;
  (* Lemma 2: the mean world is one of the n+1 probability-sorted prefixes. *)
  let best = ref ([], expected_jaccard db []) in
  let prefix = ref [] in
  for i = 0 to n - 1 do
    prefix := order.(i) :: !prefix;
    let w = List.sort compare !prefix in
    let d = expected_jaccard db w in
    if d < snd !best then best := (w, d)
  done;
  fst !best

let median_jaccard db =
  if not (Db.is_independent db) then
    invalid_arg "Set_consensus.median_jaccard: requires a tuple-independent database";
  algo_span "median_jaccard" db @@ fun () ->
  let n = Db.num_alts db in
  let forced =
    List.init n Fun.id |> List.filter (fun i -> forced_marginal (Db.marginal db i))
  in
  let optional =
    List.init n Fun.id
    |> List.filter (fun i ->
           let m = Db.marginal db i in
           Fcmp.gt m 0. && not (forced_marginal m))
    |> List.sort (fun i j -> Float.compare (Db.marginal db j) (Db.marginal db i))
  in
  let best = ref (List.sort compare forced, expected_jaccard db forced) in
  let current = ref forced in
  List.iter
    (fun i ->
      current := i :: !current;
      let w = List.sort compare !current in
      let d = expected_jaccard db w in
      if d < snd !best then best := (w, d))
    optional;
  fst !best

let median_jaccard_bid db =
  if not (Db.is_bid db) then
    invalid_arg "Set_consensus.median_jaccard_bid: requires a BID database";
  algo_span "median_jaccard_bid" db @@ fun () ->
  (* Highest-probability alternative per key; forced keys (block mass 1)
     are present in every world, so every candidate includes them. *)
  let keys = Db.keys db in
  let best_alt key =
    List.fold_left
      (fun acc l ->
        match acc with
        | Some b when Db.marginal db b >= Db.marginal db l -> acc
        | _ -> Some l)
      None (Db.alts_of_key db key)
    |> Option.get
  in
  let forced, optional =
    Array.to_list keys
    |> List.partition (fun key -> forced_marginal (Db.key_marginal db key))
  in
  let base = List.map best_alt forced in
  let optional_alts =
    List.map best_alt optional
    |> List.sort (fun a b -> Float.compare (Db.marginal db b) (Db.marginal db a))
  in
  let candidate w = List.sort compare w in
  let best = ref (candidate base, expected_jaccard db (candidate base)) in
  let current = ref base in
  List.iter
    (fun l ->
      current := l :: !current;
      let w = candidate !current in
      let d = expected_jaccard db w in
      if d < snd !best then best := (w, d))
    optional_alts;
  fst !best

(* ---------- enumeration oracles ---------- *)

let subsets n =
  if n > 20 then invalid_arg "Set_consensus: too many leaves for brute force";
  List.init (1 lsl n) (fun mask ->
      List.init n Fun.id |> List.filter (fun i -> mask land (1 lsl i) <> 0))

let brute_force_mean ~dist db =
  let candidates = subsets (Db.num_alts db) in
  List.fold_left
    (fun (bw, bd) w ->
      let d = dist db w in
      if d < bd then (w, d) else (bw, bd))
    ([], dist db []) candidates

let brute_force_median ~dist db =
  let worlds = Worlds.enumerate_merged (Db.tree db) in
  List.fold_left
    (fun acc ((ids, _), p) ->
      if p <= 0. then acc
      else
        let d = dist db ids in
        match acc with
        | Some (_, bd) when bd <= d -> acc
        | _ -> Some (ids, d))
    None worlds
  |> Option.get

let sym_diff_lists w1 w2 =
  let module S = Set.Make (Int) in
  let s1 = S.of_list w1 and s2 = S.of_list w2 in
  S.cardinal (S.diff s1 s2) + S.cardinal (S.diff s2 s1)

let enum_expected_sym_diff db w =
  Worlds.enumerate (Db.itree db)
  |> List.fold_left
       (fun acc (p, pw) -> acc +. (p *. float_of_int (sym_diff_lists w pw)))
       0.

let enum_expected_jaccard db w =
  let module S = Set.Make (Int) in
  let sw = S.of_list w in
  Worlds.enumerate (Db.itree db)
  |> List.fold_left
       (fun acc (p, pw) ->
         let spw = S.of_list pw in
         let union = S.cardinal (S.union sw spw) in
         if union = 0 then acc
         else
           let diff = sym_diff_lists w pw in
           acc +. (p *. float_of_int diff /. float_of_int union))
       0.
