(** Consensus {e complete} rankings.

    The paper's framework specialized to full rankings instead of top-k
    lists — the classic rank-aggregation setting (§2) lifted to possible
    worlds, and one of the §7 extensions.  An answer is a permutation of
    all keys; the world's answer ranks its present tuples by value, with
    absent tuples conceptually appended after every present one (position
    parameter n+1 for the footrule, K_min convention for Kendall).

    The mean ranking under Spearman's footrule is an n×n assignment
    problem over the full rank distributions; the mean under Kendall's tau
    is weighted Kemeny aggregation on the pairwise-disagreement matrix
    (NP-hard exactly; pivot + local search with an exact bitmask-DP oracle
    for small n). *)

open Consensus_anxor

type ctx
(** Full rank distributions of a database, pre-computed once. *)

val make_ctx : ?pool:Consensus_engine.Pool.t -> Db.t -> ctx
(** O(n²·total-alternatives) pre-computation, parallelized over the keys on
    [pool] (default: the global engine pool).  The pool is retained by the
    context for the later matrix builds.  Results are identical whatever
    the pool's [jobs] setting. *)

val db : ctx -> Db.t
val keys : ctx -> int array

val pool : ctx -> Consensus_engine.Pool.t
(** The engine pool the context computes on (useful for metrics). *)

val expected_footrule : ctx -> int array -> float
(** [E Σ_t |σ(t) - pos_pw(t)|] for a permutation [σ] of all keys, where
    absent tuples sit at position n+1. *)

val expected_kendall : ctx -> int array -> float
(** Expected number of forced pairwise disagreements between [σ] and the
    world ranking. *)

val mean_footrule : ctx -> int array * float
(** Exact mean ranking under the footrule via the Hungarian algorithm;
    returns (permutation, expected distance). *)

val mean_kendall_pivot :
  Consensus_util.Prng.t -> ?trials:int -> ctx -> int array * float
(** KwikSort on the disagreement tournament + local search; expected
    constant-factor approximation. *)

val mean_kendall_exact : ctx -> int array * float
(** Exact weighted Kemeny optimum by bitmask DP; requires at most 22
    keys. *)

val mean_kendall_mc4 : ctx -> int array * float
(** MC4 Markov-chain aggregation (Dwork et al., the paper's \[14\]) on the
    probabilistic tournament, scored under the exact expected Kendall
    distance. *)

val mean_kendall_copeland : ctx -> int array * float
(** Copeland (majority-wins) baseline, scored likewise. *)

val mean_kendall_via_footrule : ctx -> int array * float
(** The footrule-optimal permutation evaluated under Kendall: the classic
    2-approximation (Dwork et al., as cited in §2). *)

val disagreement_matrix : ctx -> float array array
(** [w.(i).(j)]: probability that ordering key [i] before key [j]
    disagrees with the world (j present above i, or j present and i
    absent); the Kemeny weights. *)

val enum_expected_footrule : ctx -> int array -> float
(** Enumeration oracle for tests. *)

val enum_expected_kendall : ctx -> int array -> float
(** Enumeration oracle for tests. *)

val brute_force_mean :
  ctx -> [ `Footrule | `Kendall ] -> int array * float
(** Argmin over all permutations (<= 8 keys). *)
