open Consensus_anxor
module Topk_list = Consensus_ranking.Topk_list
module Aggregation = Consensus_ranking.Aggregation
module Hungarian = Consensus_matching.Hungarian
module Pool = Consensus_engine.Pool
module Obs = Consensus_obs.Obs
module Cache = Consensus_cache.Cache

type ctx = {
  db : Db.t;
  k : int;
  pool : Pool.t; (* engine pool shared by every computation on this ctx *)
  keys : int array;
  key_pos : (int, int) Hashtbl.t; (* key -> index into [keys] *)
  rank : float array array; (* per key index: Pr(r = i), i = 1..k *)
  leq : float array array; (* per key index: Pr(r <= i), i = 1..k *)
  sum_leq : float array; (* Σ_keys Pr(r <= i), i = 1..k (0-based i-1) *)
  joint_ord : (int * int, float) Hashtbl.t; (* ordered joint top-k cache *)
}

(* One span per public algorithm, labelled with the metric and the instance
   shape — the per-query cost attribution the trace viewer shows.  [attrs]
   adds algorithm-specific fields (candidate-space sizes mostly); the
   closure only runs when tracing is on. *)
let algo_span ?(attrs = fun () -> []) name ~k ~n f =
  Obs.with_span
    ~attrs:(fun () -> ("k", Obs.Int k) :: ("keys", Obs.Int n) :: attrs ())
    ("core.topk." ^ name)
    f

(* Ordered-joint probabilities are shared across contexts on the same
   database through the process cache: every entry is a deterministic
   function of (db, k, pair), so seeding from a snapshot yields the same
   floats a fresh computation would. *)
let joints_cache_key db ~k =
  Cache.key ~family:"topk_joints" ~digest:(Db.digest db)
    ~params:[ string_of_int k ]

let make_ctx ?pool db ~k =
  if k <= 0 then invalid_arg "Topk_consensus.make_ctx: k must be positive";
  if not (Db.scores_distinct db) then
    invalid_arg "Topk_consensus.make_ctx: scores must be pairwise distinct";
  algo_span "make_ctx" ~k ~n:(Array.length (Db.keys db)) @@ fun () ->
  let pool = Pool.resolve pool in
  let keys = Db.keys db in
  let nk = Array.length keys in
  let key_pos = Hashtbl.create nk in
  Array.iteri (fun i key -> Hashtbl.replace key_pos key i) keys;
  (* rank_table dispatches to the O(nk) sweep on independent/BID shapes *)
  let table = Marginals.rank_table ~pool db ~k in
  let rank = Array.map (fun key -> List.assoc key table) keys in
  let leq =
    Array.map
      (fun dist ->
        let acc = ref 0. in
        Array.map
          (fun p ->
            acc := !acc +. p;
            !acc)
          dist)
      rank
  in
  let sum_leq =
    Array.init k (fun i ->
        Array.fold_left (fun acc l -> acc +. l.(i)) 0. leq)
  in
  let joint_ord = Hashtbl.create 64 in
  (if Cache.enabled () then
     match Cache.find (joints_cache_key db ~k) with
     | Some (Cache.Pairs pairs) ->
         Array.iter (fun (pair, p) -> Hashtbl.replace joint_ord pair p) pairs
     | _ -> ());
  { db; k; pool; keys; key_pos; rank; leq; sum_leq; joint_ord }

let db ctx = ctx.db
let k ctx = ctx.k
let pool ctx = ctx.pool

let kidx ctx key =
  match Hashtbl.find_opt ctx.key_pos key with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Topk_consensus: unknown key %d" key)

let rank_leq ctx key = ctx.leq.(kidx ctx key).(ctx.k - 1)

let joint_ordered ctx key1 key2 =
  match Hashtbl.find_opt ctx.joint_ord (key1, key2) with
  | Some p -> p
  | None ->
      let p = Marginals.topk_pair_prob_ordered ctx.db key1 key2 ~k:ctx.k in
      Hashtbl.replace ctx.joint_ord (key1, key2) p;
      p

(* Batch-fill the ordered-joint cache: the pair probabilities are the O(n·k)
   trivariate-engine runs dominating every Kendall computation, and they are
   independent of each other — compute the missing ones in parallel, then
   insert sequentially (the cache is only ever touched by the submitting
   domain). *)
let ensure_joints ctx pairs =
  let missing =
    List.sort_uniq compare pairs
    |> List.filter (fun (k1, k2) ->
           k1 <> k2 && not (Hashtbl.mem ctx.joint_ord (k1, k2)))
    |> Array.of_list
  in
  if Array.length missing > 0 then begin
    Obs.with_span
      ~attrs:(fun () ->
        [ ("pairs", Obs.Int (Array.length missing)); ("k", Obs.Int ctx.k) ])
      "core.topk.kendall_joints"
    @@ fun () ->
    let values =
      Pool.parallel_map ~pool:ctx.pool ~stage:"kendall_joints"
        (fun (k1, k2) -> Marginals.topk_pair_prob_ordered ctx.db k1 k2 ~k:ctx.k)
        missing
    in
    Array.iteri (fun i pair -> Hashtbl.replace ctx.joint_ord pair values.(i)) missing;
    if Cache.enabled () then begin
      (* Publish the grown table so later contexts on this database start
         from the warm set. *)
      let snapshot =
        Hashtbl.fold (fun pair p acc -> (pair, p) :: acc) ctx.joint_ord []
        |> List.sort compare |> Array.of_list
      in
      Cache.store (joints_cache_key ctx.db ~k:ctx.k) (Cache.Pairs snapshot)
    end
  end

(* ---------- evaluators ---------- *)

let expected_sym_diff ctx tau =
  Topk_list.validate ~k:ctx.k tau;
  let in_tau = Array.fold_left (fun acc key -> acc +. rank_leq ctx key) 0. tau in
  (float_of_int (Array.length tau) +. ctx.sum_leq.(ctx.k - 1) -. (2. *. in_tau))
  /. float_of_int (2 * ctx.k)

let expected_intersection ctx tau =
  Topk_list.validate ~k:ctx.k tau;
  let acc = ref 0. in
  for i = 1 to ctx.k do
    (* Normalized symmetric difference of the depth-i prefixes. *)
    let prefix_hits = ref 0. in
    for j = 0 to min i (Array.length tau) - 1 do
      prefix_hits := !prefix_hits +. ctx.leq.(kidx ctx tau.(j)).(i - 1)
    done;
    let size_prefix = float_of_int (min i (Array.length tau)) in
    acc :=
      !acc
      +. ((size_prefix +. ctx.sum_leq.(i - 1) -. (2. *. !prefix_hits))
         /. float_of_int (2 * i))
  done;
  !acc /. float_of_int ctx.k

(* Footrule ingredients (Figure 2): for each key t,
   in_list t i  = E|pos_τ(t) - pos_pw(t)| when τ(i) = t
   base t       = the same when t ∉ τ (τ-position k+1). *)
let footrule_in_list ctx ti i =
  let acc = ref 0. in
  Array.iteri
    (fun j p -> acc := !acc +. (p *. float_of_int (abs (i - (j + 1)))))
    ctx.rank.(ti);
  !acc +. ((1. -. ctx.leq.(ti).(ctx.k - 1)) *. float_of_int (ctx.k + 1 - i))

let footrule_base ctx ti =
  let acc = ref 0. in
  Array.iteri
    (fun j p -> acc := !acc +. (p *. float_of_int (ctx.k + 1 - (j + 1))))
    ctx.rank.(ti);
  !acc

let expected_footrule ctx tau =
  Topk_list.validate ~k:ctx.k tau;
  let total = Array.fold_left (fun acc ti -> acc +. footrule_base ctx ti)
      0. (Array.init (Array.length ctx.keys) Fun.id)
  in
  let adjust = ref 0. in
  Array.iteri
    (fun pos key ->
      let ti = kidx ctx key in
      adjust := !adjust +. footrule_in_list ctx ti (pos + 1) -. footrule_base ctx ti)
    tau;
  total +. !adjust

(* Both orderings of every pair {t ∈ τ} × {any key}: what the Kendall
   evaluators consume. *)
let tau_joint_pairs ctx tau =
  let pairs = ref [] in
  Array.iter
    (fun t ->
      Array.iter
        (fun j -> if j <> t then pairs := (t, j) :: (j, t) :: !pairs)
        ctx.keys)
    tau;
  !pairs

let expected_kendall ctx tau =
  Topk_list.validate ~k:ctx.k tau;
  ensure_joints ctx (tau_joint_pairs ctx tau);
  (* For every ordered key pair (i, j) with i ∈ τ and j required to come
     after i (j later in τ, or j ∉ τ):
       disagreement probability =
         Pr(both in top-k with j above i)            (order flipped)
       + Pr(j in top-k ∧ i not in top-k).            (i missing) *)
  let contribution i j =
    joint_ordered ctx j i
    +. (rank_leq ctx j
       -. (joint_ordered ctx i j +. joint_ordered ctx j i))
  in
  let acc = ref 0. in
  let len = Array.length tau in
  for a = 0 to len - 1 do
    for b = a + 1 to len - 1 do
      acc := !acc +. contribution tau.(a) tau.(b)
    done;
    Array.iter
      (fun j -> if not (Topk_list.mem tau j) then acc := !acc +. contribution tau.(a) j)
      ctx.keys
  done;
  !acc

let expected_kendall_p ~p ctx tau =
  if p < 0. || p > 1. then
    invalid_arg "Topk_consensus.expected_kendall_p: p must be in [0,1]";
  let base = expected_kendall ctx tau in
  if p = 0. then base
  else begin
    (* Undetermined pairs: both keys inside τ with neither in the world's
       top-k, or both outside τ with both in the world's top-k. *)
    let joint i j = joint_ordered ctx i j +. joint_ordered ctx j i in
    let inside = ref 0. in
    let len = Array.length tau in
    for a = 0 to len - 1 do
      for b = a + 1 to len - 1 do
        let i = tau.(a) and j = tau.(b) in
        inside :=
          !inside +. (1. -. rank_leq ctx i -. rank_leq ctx j +. joint i j)
      done
    done;
    let outside = ref 0. in
    let others =
      Array.to_list ctx.keys |> List.filter (fun key -> not (Topk_list.mem tau key))
    in
    let rec outside_pairs acc = function
      | [] -> acc
      | i :: rest ->
          outside_pairs
            (List.fold_left (fun acc j -> (i, j) :: (j, i) :: acc) acc rest)
            rest
    in
    ensure_joints ctx (outside_pairs [] others);
    let rec pairs = function
      | [] -> ()
      | i :: rest ->
          List.iter (fun j -> outside := !outside +. joint i j) rest;
          pairs rest
    in
    pairs others;
    base +. (p *. (!inside +. !outside))
  end

(* ---------- consensus answers ---------- *)

let top_keys_by ctx score =
  let order = Array.init (Array.length ctx.keys) Fun.id in
  Array.sort (fun a b -> Float.compare (score b) (score a)) order;
  Array.init (min ctx.k (Array.length order)) (fun i -> ctx.keys.(order.(i)))

let mean_sym_diff ctx =
  algo_span "mean_sym_diff" ~k:ctx.k ~n:(Array.length ctx.keys) @@ fun () ->
  top_keys_by ctx (fun ti -> ctx.leq.(ti).(ctx.k - 1))

(* Theorem 4 dynamic program.  For a threshold value [a], [filter_leaves]
   keeps the leaves with value >= a; the DP computes, for every world size
   0..k of the restricted tree, the realizable world maximizing the sum of
   Pr(r(t) <= k) over its members. *)
let median_sym_diff ctx =
  algo_span "median_sym_diff" ~k:ctx.k ~n:(Array.length ctx.keys)
    ~attrs:(fun () ->
      (* The DP candidate space: one restricted tree per threshold value,
         each solved for world sizes 0..k. *)
      [
        ("alts", Obs.Int (Db.num_alts ctx.db));
        ("thresholds", Obs.Int (Array.length ctx.keys));
      ])
  @@ fun () ->
  let db = ctx.db in
  let p_of_leaf l = rank_leq ctx (Db.alt db l).Db.key in
  let dp_tree threshold =
    let kk = ctx.k in
    (* entry: score, chosen leaves (None = infeasible) *)
    let merge_xor results residual_empty =
      let best = Array.make (kk + 1) None in
      if residual_empty then best.(0) <- Some (0., []);
      List.iter
        (fun child ->
          Array.iteri
            (fun i entry ->
              match entry with
              | None -> ()
              | Some (s, w) -> (
                  match best.(i) with
                  | Some (bs, _) when bs >= s -> ()
                  | _ -> best.(i) <- Some (s, w)))
            child)
        results;
      best
    in
    let merge_and results =
      List.fold_left
        (fun acc child ->
          let next = Array.make (kk + 1) None in
          Array.iteri
            (fun i entry ->
              match entry with
              | None -> ()
              | Some (s1, w1) ->
                  Array.iteri
                    (fun j entry2 ->
                      if i + j <= kk then
                        match entry2 with
                        | None -> ()
                        | Some (s2, w2) -> (
                            let s = s1 +. s2 in
                            match next.(i + j) with
                            | Some (bs, _) when bs >= s -> ()
                            | _ -> next.(i + j) <- Some (s, List.rev_append w2 w1)))
                    child)
            acc;
          next)
        (let base = Array.make (kk + 1) None in
         base.(0) <- Some (0., []);
         base)
        results
    in
    let rec go (t : int Tree.t) =
      match t with
      | Tree.Leaf l ->
          let arr = Array.make (kk + 1) None in
          if (Db.alt db l).Db.value >= threshold then arr.(1) <- Some (p_of_leaf l, [ l ])
          else arr.(0) <- Some (0., [])
          (* a filtered leaf contributes the empty set *);
          arr
      | Tree.And children -> merge_and (List.map go children)
      | Tree.Xor edges ->
          let total = List.fold_left (fun acc (p, _) -> acc +. p) 0. edges in
          merge_xor (List.map (fun (_, c) -> go c) edges) (total < 1. -. 1e-12)
    in
    go (Db.itree db)
  in
  (* Candidate thresholds: all distinct leaf values (decreasing), which
     cover every possible k-th score; the minimum threshold also yields the
     short answers of worlds with fewer than k tuples. *)
  let values =
    Array.init (Db.num_alts db) (fun l -> (Db.alt db l).Db.value)
    |> Array.to_list |> List.sort_uniq Float.compare
  in
  let min_value = List.hd values in
  (* Objective for a candidate of size s with score sum Σ P(t):
     maximize Σ_{t∈τ}(2 P(t) - 1)  ⇔  minimize E|τ Δ τ_pw| (size-aware). *)
  let best = ref None in
  let consider entry size =
    match entry with
    | None -> ()
    | Some (s, leaves) -> (
        let objective = (2. *. s) -. float_of_int size in
        match !best with
        | Some (bo, _) when bo >= objective -> ()
        | _ -> best := Some (objective, leaves))
  in
  List.iter
    (fun a ->
      Consensus_util.Deadline.check_current ();
      let table = dp_tree a in
      consider table.(ctx.k) ctx.k;
      if a = min_value then
        for size = 0 to ctx.k - 1 do
          consider table.(size) size
        done)
    values;
  match !best with
  | None -> [||]
  | Some (_, leaves) ->
      (* Order the chosen alternatives by decreasing value, return keys. *)
      List.map (fun l -> Db.alt db l) leaves
      |> List.sort (fun (a : Db.alt) b -> Float.compare b.value a.value)
      |> List.map (fun (a : Db.alt) -> a.key)
      |> Array.of_list

let mean_intersection ctx =
  let n = Array.length ctx.keys in
  (* With fewer keys than k the answer holds all keys and only their order
     is assigned; the per-position profits still sum to the true k. *)
  let positions = min ctx.k n in
  algo_span "mean_intersection" ~k:ctx.k ~n @@ fun () ->
  (* profit of placing key t at position j (1-based): Σ_{i>=j} Pr(r<=i)/i *)
  let profit =
    Pool.parallel_init ~pool:ctx.pool ~stage:"intersection_profit" positions
      (fun j0 ->
        Array.init n (fun ti ->
            let acc = ref 0. in
            for i = j0 + 1 to ctx.k do
              acc := !acc +. (ctx.leq.(ti).(i - 1) /. float_of_int i)
            done;
            !acc))
  in
  let assignment, _ = Hungarian.maximize profit in
  Array.map (fun ti -> ctx.keys.(ti)) assignment

let mean_intersection_upsilon ctx =
  top_keys_by ctx (fun ti ->
      let acc = ref 0. in
      for i = 1 to ctx.k do
        acc := !acc +. (ctx.leq.(ti).(i - 1) /. float_of_int i)
      done;
      !acc)

let mean_footrule ctx =
  let n = Array.length ctx.keys in
  let positions = min ctx.k n in
  algo_span "mean_footrule" ~k:ctx.k ~n @@ fun () ->
  let cost =
    Pool.parallel_init ~pool:ctx.pool ~stage:"footrule_cost" positions (fun i0 ->
        Array.init n (fun ti ->
            footrule_in_list ctx ti (i0 + 1) -. footrule_base ctx ti))
  in
  let assignment, _ = Hungarian.minimize cost in
  Array.map (fun ti -> ctx.keys.(ti)) assignment

let mean_kendall_footrule = mean_footrule

let mean_kendall_pivot rng ?(trials = 8) ctx =
  let n = Array.length ctx.keys in
  let pool_size = min n (max (2 * ctx.k) (ctx.k + 4)) in
  algo_span "mean_kendall_pivot" ~k:ctx.k ~n
    ~attrs:(fun () ->
      [ ("trials", Obs.Int trials); ("pool", Obs.Int pool_size) ])
  @@ fun () ->
  (* Candidate pool: the most top-k-likely keys. *)
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> Float.compare ctx.leq.(b).(ctx.k - 1) ctx.leq.(a).(ctx.k - 1)) order;
  let pool = Array.init pool_size (fun i -> ctx.keys.(order.(i))) in
  let pref =
    let compute () =
      Pool.parallel_init ~pool:ctx.pool ~stage:"kendall_tournament" pool_size
        (fun i ->
          Array.init pool_size (fun j ->
              if i = j then 0. else Marginals.beats ctx.db pool.(i) pool.(j)))
    in
    if not (Cache.enabled ()) then compute ()
    else
      (* [pool] is a deterministic function of (db, k): the tournament
         matrix can be keyed by the same pair. *)
      let key =
        Cache.key ~family:"topk_beats" ~digest:(Db.digest ctx.db)
          ~params:[ string_of_int ctx.k ]
      in
      match Cache.memo key (fun () -> Cache.Matrix (compute ())) with
      | Cache.Matrix m -> m
      | _ -> assert false
  in
  let pivot_order, _ = Aggregation.best_pivot_of rng ~trials pref in
  let improved, _ = Aggregation.local_search pref pivot_order in
  let candidate_pivot = Array.init (min ctx.k pool_size) (fun i -> pool.(improved.(i))) in
  (* Tournament of candidates under the exact expected Kendall distance. *)
  let candidates =
    [ candidate_pivot; mean_sym_diff ctx; mean_footrule ctx ]
  in
  List.fold_left
    (fun (bt, bd) t ->
      let d = expected_kendall ctx t in
      if d < bd then (t, d) else (bt, bd))
    (candidate_pivot, expected_kendall ctx candidate_pivot)
    candidates
  |> fst

let mean_kendall_pool_exact ?pool ctx =
  let k = ctx.k in
  if k > 10 then
    invalid_arg "Topk_consensus.mean_kendall_pool_exact: k too large (max 10)";
  let n = Array.length ctx.keys in
  let pool_size = min n (Option.value pool ~default:(k + 6)) in
  if pool_size < k then
    invalid_arg "Topk_consensus.mean_kendall_pool_exact: pool smaller than k";
  algo_span "mean_kendall_pool_exact" ~k ~n
    ~attrs:(fun () ->
      (* Candidate space: the (pool_size choose k) · k! ordered k-subsets of
         the pool scored exactly. *)
      [ ("pool", Obs.Int pool_size) ])
  @@ fun () ->
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b -> Float.compare ctx.leq.(b).(ctx.k - 1) ctx.leq.(a).(ctx.k - 1))
    order;
  let pool_keys = Array.init pool_size (fun i -> ctx.keys.(order.(i))) in
  (* Every subset evaluation consumes the ordered joints of pool × keys:
     batch them up front so the subset loop runs on the warm cache. *)
  ensure_joints ctx (tau_joint_pairs ctx pool_keys);
  (* cost of placing key i before key j, as in expected_kendall *)
  let contribution i j =
    joint_ordered ctx j i
    +. (rank_leq ctx j -. (joint_ordered ctx i j +. joint_ordered ctx j i))
  in
  (* the set-only part: pairs (i in τ, j outside τ) *)
  let set_cost subset =
    let in_subset key = List.mem key subset in
    List.fold_left
      (fun acc i ->
        Array.fold_left
          (fun acc j -> if in_subset j then acc else acc +. contribution i j)
          acc ctx.keys)
      0. subset
  in
  let best = ref None in
  let consider subset =
    let arr = Array.of_list subset in
    let m = Array.length arr in
    let pref =
      Array.init m (fun a ->
          Array.init m (fun b ->
              if a = b then 0. else contribution arr.(b) arr.(a)))
    in
    let perm, order_cost = Consensus_ranking.Aggregation.kemeny_exact pref in
    let total = order_cost +. set_cost subset in
    match !best with
    | Some (_, bd) when bd <= total -> ()
    | _ -> best := Some (Array.map (fun i -> arr.(i)) perm, total)
  in
  let rec subsets chosen remaining count =
    if count = 0 then consider (List.rev chosen)
    else
      match remaining with
      | [] -> ()
      | key :: rest ->
          if List.length rest + 1 >= count then begin
            subsets (key :: chosen) rest (count - 1);
            subsets chosen rest count
          end
  in
  subsets [] (Array.to_list pool_keys) k;
  match !best with Some (answer, _) -> answer | None -> [||]

(* ---------- sampled consensus ---------- *)

let sample_answers rng ~samples db ~k =
  if samples <= 0 then invalid_arg "Topk_consensus: samples must be positive";
  List.init samples (fun _ ->
      Topk_list.of_world ~k (Worlds.sample rng (Db.tree db)))

let sampled_mean_sym_diff rng ~samples db ~k =
  let answers = sample_answers rng ~samples db ~k in
  let counts = Hashtbl.create 64 in
  List.iter
    (fun answer ->
      Array.iter
        (fun key ->
          Hashtbl.replace counts key
            (1 + Option.value (Hashtbl.find_opt counts key) ~default:0))
        answer)
    answers;
  let scored =
    Db.keys db |> Array.to_list
    |> List.map (fun key ->
           (key, float_of_int (Option.value (Hashtbl.find_opt counts key) ~default:0)))
  in
  let sorted = List.sort (fun (_, a) (_, b) -> Float.compare b a) scored in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | (key, _) :: rest -> key :: take (n - 1) rest
  in
  Array.of_list (take k sorted)

let sampled_mean_footrule rng ~samples db ~k =
  let answers = sample_answers rng ~samples db ~k in
  let keys = Db.keys db in
  let n = Array.length keys in
  if n < k then invalid_arg "Topk_consensus.sampled_mean_footrule: fewer keys than k";
  (* Empirical positional cost of placing key t at position i (1-based,
     with i = k+1 meaning "left out"): average |i - pos_sample(t)|. *)
  let pos_sum = Array.make_matrix n (k + 1) 0. in
  let key_idx = Hashtbl.create n in
  Array.iteri (fun ti key -> Hashtbl.replace key_idx key ti) keys;
  List.iter
    (fun answer ->
      Array.iteri
        (fun ti key ->
          let pos =
            match Topk_list.position answer key with Some p -> p | None -> k + 1
          in
          ignore key;
          for i = 1 to k + 1 do
            pos_sum.(ti).(i - 1) <-
              pos_sum.(ti).(i - 1) +. float_of_int (abs (i - pos))
          done)
        keys)
    answers;
  (* assignment of positions 1..k to keys; the k+1 column is the per-key
     baseline of leaving it out *)
  let cost =
    Array.init k (fun i0 ->
        Array.init n (fun ti -> pos_sum.(ti).(i0) -. pos_sum.(ti).(k)))
  in
  let assignment, _ = Hungarian.minimize cost in
  Array.map (fun ti -> keys.(ti)) assignment

(* ---------- enumeration oracles ---------- *)

type metric = Sym_diff | Intersection | Footrule | Kendall

let eval_metric metric ~k t1 t2 =
  match metric with
  | Sym_diff -> Topk_list.sym_diff ~k t1 t2
  | Intersection -> Topk_list.intersection ~k t1 t2
  | Footrule -> Topk_list.footrule ~k t1 t2
  | Kendall -> Topk_list.kendall ~k t1 t2

let enum_expected ctx metric tau =
  Worlds.enumerate (Db.tree ctx.db)
  |> List.fold_left
       (fun acc (p, w) ->
         acc +. (p *. eval_metric metric ~k:ctx.k tau (Topk_list.of_world ~k:ctx.k w)))
       0.

let mc_expected rng ~samples ctx metric tau =
  if samples <= 0 then invalid_arg "Topk_consensus.mc_expected: samples must be positive";
  let tree = Db.tree ctx.db in
  let acc = ref 0. in
  for _ = 1 to samples do
    let w = Worlds.sample rng tree in
    acc := !acc +. eval_metric metric ~k:ctx.k tau (Topk_list.of_world ~k:ctx.k w)
  done;
  !acc /. float_of_int samples

let rec ordered_tuples xs size =
  if size = 0 then [ [] ]
  else
    List.concat_map
      (fun x ->
        List.map (fun rest -> x :: rest)
          (ordered_tuples (List.filter (fun y -> y <> x) xs) (size - 1)))
      xs

let brute_force_mean ctx metric =
  let keys = Array.to_list ctx.keys in
  if List.length keys > 8 then
    invalid_arg "Topk_consensus.brute_force_mean: too many keys";
  (* The mean answer space Ω is the ordered lists of size exactly k (§3.4,
     §5): shorter lists are possible *worlds'* answers and belong to the
     median problem only. *)
  let candidates =
    ordered_tuples keys (min ctx.k (List.length keys))
    |> List.map Array.of_list |> Array.of_list
  in
  algo_span "brute_force_mean" ~k:ctx.k ~n:(List.length keys)
    ~attrs:(fun () -> [ ("candidates", Obs.Int (Array.length candidates)) ])
  @@ fun () ->
  if Array.length candidates = 0 then ([||], enum_expected ctx metric [||])
  else begin
    (* Evaluate every candidate in parallel (each enumeration is
       independent), then take the first minimum in candidate order — the
       same answer the sequential fold picked. *)
    let dists =
      Pool.parallel_map ~pool:ctx.pool ~stage:"brute_force_mean"
        (fun t -> enum_expected ctx metric t)
        candidates
    in
    let best = ref (candidates.(0), dists.(0)) in
    Array.iteri
      (fun i d -> if d < snd !best -. 1e-12 then best := (candidates.(i), d))
      dists;
    !best
  end

let brute_force_median ctx metric =
  let worlds = Worlds.enumerate (Db.tree ctx.db) in
  let answers =
    List.filter_map
      (fun (p, w) -> if p > 0. then Some (Topk_list.of_world ~k:ctx.k w) else None)
      worlds
    |> List.sort_uniq compare |> Array.of_list
  in
  let dists =
    Pool.parallel_map ~pool:ctx.pool ~stage:"brute_force_median"
      (fun t -> enum_expected ctx metric t)
      answers
  in
  let best = ref None in
  Array.iteri
    (fun i d ->
      match !best with
      | Some (_, bd) when bd <= d -> ()
      | _ -> best := Some (answers.(i), d))
    dists;
  Option.get !best
