(** Wire protocol of the serve daemon: request-body parsing and JSON
    response rendering.

    Request bodies are the shared query wire syntax
    ({!Consensus.Query_text}); responses are JSON built with the
    project's own emitter ({!Consensus_obs.Json}).  This module is pure —
    no sockets, no scheduler — so the protocol is testable in isolation
    and the daemon stays a thin routing layer. *)

open Consensus_anxor

val parse_query_body : string -> (Consensus.Api.query, string) result
(** Parse a [POST /query] body: one wire-syntax query line (blank lines
    and [#] comments allowed around it).  An [aggregate] line takes its
    matrix from the following lines, one whitespace-separated row each —
    the same out-of-band convention as the oracle corpus.  Errors are
    human-readable one-liners (mapped to HTTP 400). *)

val parse_batch_body : string -> (Consensus.Api.query list, string) result
(** Parse a [POST /batch] body: any number of database-backed query lines
    ({!Consensus.Query_text.parse_string}).  [aggregate] lines are an
    error here — a batch shares the resident database, and carries no
    matrix.  Empty batches are an error. *)

val answer_json : Db.t -> Consensus.Api.answer -> Consensus_obs.Json.t
(** One answer as JSON: [{"family": ..., <payload>, "expected": {...}}]
    where the payload field is per family — [world] carries
    [{"leaves": [{"key", "value"}...]}] (alternatives resolved against
    [db]), [topk]/[rank] carry ["keys"], [aggregate] ["counts"], [cluster]
    ["labels"]. *)

val result_json :
  ?request:string ->
  ?profile:Consensus_obs.Json.t ->
  db_name:string ->
  query:Consensus.Api.query ->
  elapsed:float ->
  db:Db.t ->
  (Consensus.Api.answer, Consensus.Api.Error.t) result ->
  Consensus_obs.Json.t
(** One evaluated request as JSON:
    [{"db", "query" (canonical wire line), "elapsed_ms", "answer"}] on
    [Ok], [{"db", "query", "elapsed_ms", "error", "reason"}] on [Error]
    (where ["error"] is the machine-readable kind: ["unsupported"],
    ["deadline_exceeded"] or ["invalid_input"]).  [request] prepends the
    trace-context request id as ["request"]; [profile] appends an inline
    explain profile ({!Consensus_obs.Report.to_obj}) as ["profile"]. *)

val error_body : string -> string
(** [{"error": msg}] plus a trailing newline — the uniform error payload
    for non-200 responses. *)

val status_of_error : Consensus.Api.Error.t -> int
(** HTTP status for a per-query evaluation error: [Invalid_input] is 400,
    [Unsupported] 422, [Deadline_exceeded] 504. *)

val status_of_reject : Scheduler.reject -> int
(** HTTP status for an admission reject: [Queue_full] 429, [Overloaded]
    and [Shutting_down] 503. *)
