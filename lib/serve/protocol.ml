open Consensus_anxor
module Api = Consensus.Api
module Query_text = Consensus.Query_text
module Json = Consensus_obs.Json
module Formats = Consensus_textio.Formats

let significant l =
  let l = String.trim l in
  l <> "" && l.[0] <> '#'

let parse_query_body body =
  match String.split_on_char '\n' body |> List.filter significant with
  | [] -> Error "empty body: expected one query line"
  | qline :: rest -> (
      match Query_text.parse_proto_line qline with
      | Error e -> Error e
      | Ok None -> Error "empty query line"
      | Ok (Some (Query_text.Db_query q)) ->
          if rest = [] then Ok q
          else Error "unexpected content after the query line"
      | Ok (Some (Query_text.Aggregate_query flavor)) -> (
          if rest = [] then
            Error "aggregate query: expected matrix rows after the query line"
          else
            match Formats.matrix_of_lines rest with
            | probs -> Ok (Api.Aggregate (probs, flavor))
            | exception Failure e -> Error e))

let parse_batch_body body =
  match Query_text.parse_string body with
  | Error _ as e -> e
  | Ok [] -> Error "empty batch: expected at least one query line"
  | Ok _ as ok -> ok

(* ---------- rendering ---------- *)

let expected_json expected =
  Json.Obj (List.map (fun (name, v) -> (name, Json.Float v)) expected)

let int_array_json a =
  Json.List (Array.to_list a |> List.map (fun k -> Json.Int k))

let answer_json db answer =
  let fields =
    match answer with
    | Api.World_answer { leaves; expected } ->
        [
          ("family", Json.Str "world");
          ( "leaves",
            Json.List
              (List.map
                 (fun l ->
                   let a = Db.alt db l in
                   Json.Obj
                     [
                       ("key", Json.Int a.Db.key); ("value", Json.Float a.Db.value);
                     ])
                 leaves) );
          ("expected", expected_json expected);
        ]
    | Api.Topk_answer { keys; expected } ->
        [
          ("family", Json.Str "topk");
          ("keys", int_array_json keys);
          ("expected", expected_json expected);
        ]
    | Api.Rank_answer { keys; expected } ->
        [
          ("family", Json.Str "rank");
          ("keys", int_array_json keys);
          ("expected", expected_json expected);
        ]
    | Api.Aggregate_answer { counts; expected } ->
        [
          ("family", Json.Str "aggregate");
          ( "counts",
            Json.List (Array.to_list counts |> List.map (fun c -> Json.Float c))
          );
          ("expected", expected_json expected);
        ]
    | Api.Cluster_answer { labels; expected } ->
        [
          ("family", Json.Str "cluster");
          ("labels", int_array_json labels);
          ("expected", expected_json expected);
        ]
  in
  Json.Obj fields

let error_kind = function
  | Api.Error.Unsupported _ -> "unsupported"
  | Api.Error.Deadline_exceeded -> "deadline_exceeded"
  | Api.Error.Invalid_input _ -> "invalid_input"

let result_json ?request ?profile ~db_name ~query ~elapsed ~db result =
  let base =
    (match request with
    | Some id -> [ ("request", Json.Str id) ]
    | None -> [])
    @ [
        ("db", Json.Str db_name);
        ( "query",
          Json.Str (Query_text.print_proto (Query_text.proto_of_query query)) );
        ("elapsed_ms", Json.Float (elapsed *. 1000.));
      ]
  in
  let tail =
    match profile with Some p -> [ ("profile", p) ] | None -> []
  in
  match result with
  | Ok answer -> Json.Obj (base @ [ ("answer", answer_json db answer) ] @ tail)
  | Error e ->
      Json.Obj
        (base
        @ [
            ("error", Json.Str (error_kind e));
            ("reason", Json.Str (Api.Error.to_string e));
          ]
        @ tail)

let error_body msg = Json.to_string (Json.Obj [ ("error", Json.Str msg) ]) ^ "\n"

let status_of_error = function
  | Api.Error.Invalid_input _ -> 400
  | Api.Error.Unsupported _ -> 422
  | Api.Error.Deadline_exceeded -> 504

let status_of_reject = function
  | Scheduler.Queue_full -> 429
  | Scheduler.Overloaded | Scheduler.Shutting_down -> 503
