(** The consensus query-serving daemon: resident databases, one shared
    engine pool and probability cache, an admission-controlled scheduler
    ({!Scheduler}) and the concurrent HTTP front end
    ({!Consensus_obs.Expose}).

    Routes (beyond the built-in [/metrics], [/trace], [/quit]):

    - [POST /query?db=NAME] — one wire-syntax query line in the body
      (aggregate matrices follow the line); evaluates against the resident
      database [NAME] (optional when exactly one database is resident).
      Query parameters: [deadline_ms] (per-request deadline, overriding
      the configured default), [seed] (rng seed, default 42), [cache]
      ([true]/[false]: per-request cache bypass), [label] (trace label),
      [explain] ([true] embeds the request's explain profile in the
      response as ["profile"]).  The response carries the request's trace
      id as ["request"].
    - [POST /batch?db=NAME] — any number of database-backed query lines;
      evaluated in order under one scheduler slot and one deadline, with
      per-query rng seeds [seed], [seed+1], ... (matching CLI batch).
      Always 200 on parse success; per-item errors are reported inline.
    - [GET /dbs] — the resident databases and their shapes.
    - [GET /healthz] — overrides the Expose built-in with a richer JSON
      payload: [status], build [version], [uptime_s], scheduler
      [inflight] and [queue_depth], and the resident database names.
    - [GET /debug/slow?limit=N] — the slow-query ring, newest first: every
      request whose wall time (queue wait + run) reached
      [slow_threshold], with its timings, cache traffic and folded
      explain profile.  At most [slow_capacity] entries are retained.
    - [GET /debug/log?limit=N] — the most recent structured log events
      ({!Consensus_obs.Log.recent}), newest first.
    - [GET /debug/history] and [GET /debug/slo] fall through to the
      Expose built-ins ({!Consensus_obs.Monitor} time series and
      {!Consensus_obs.Slo} burn rates).

    With the monitor enabled (default), requests additionally carry a
    [gc_pause_ms] field in access-log lines, slow-ring entries and inline
    profiles: the runtime (GC) pause time overlapping the request's run
    window, attributed from [Runtime_events].

    Every request gets a fresh trace context ({!Consensus_obs.Context}):
    spans recorded during its evaluation are tagged with the request id
    (visible in [/trace] and foldable per request), the serve latency
    histogram records the id as an OpenMetrics exemplar, and — unless
    [access_log] is off — completion emits one ["access"] log event with
    route, family, status, queue-wait/run milliseconds and cache
    hits/misses.

    Status mapping: malformed bodies/parameters 400; unknown database 404;
    unsupported metric/flavor combinations 422; deadline exceeded 504;
    queue full 429; load shed / shutting down 503.

    Starting the daemon enables the observability subsystem (admission
    control reads the engine queue-depth gauge, and [/metrics] is part of
    the service contract) and applies [log_level] to the structured
    logger. *)

open Consensus_anxor

type config = {
  host : string;  (** Bind address (default ["127.0.0.1"]). *)
  port : int;  (** [0] picks an ephemeral port; read it back with {!port}. *)
  dbs : (string * Db.t) list;  (** Resident databases, by name. *)
  jobs : int;  (** Engine-pool slots; [0] = auto. *)
  max_inflight : int;  (** Concurrently evaluating requests. *)
  max_queue : int;  (** Admitted requests waiting beyond [max_inflight]. *)
  shed_threshold : float;
      (** Engine-queue-depth level above which admission sheds load
          ([infinity] = never). *)
  default_deadline : float option;
      (** Per-request deadline in seconds when the request names none. *)
  max_connections : int;  (** Concurrent HTTP connection threads. *)
  cache : bool;  (** Enable the shared probability cache. *)
  slow_threshold : float;
      (** Wall-time threshold (seconds) at or above which a request's
          profile is captured into the slow ring ([infinity] = never). *)
  slow_capacity : int;  (** Slow-ring size (>= 1; oldest entries drop). *)
  access_log : bool;  (** Emit one ["access"] log event per request. *)
  log_level : Consensus_obs.Log.level;
      (** Minimum structured-log level, applied at {!start}. *)
  monitor_interval : float;
      (** Sampling interval (seconds) for the metrics time-series monitor
          and the runtime-events GC-pause consumer; [<= 0] disables both
          (no sampler domain, no [gc_pause_ms] attribution).  Default 1 s. *)
  slos : Consensus_obs.Slo.objective list;
      (** Service-level objectives evaluated over the monitor history into
          burn-rate gauges, [GET /debug/slo] and [/healthz] degradation. *)
  slo_config : Consensus_obs.Slo.config;
      (** Burn windows and trip threshold (tests shrink these). *)
  flight_dir : string option;
      (** When set, enables the flight recorder writing into this
          directory (must exist and be writable) and installs a SIGQUIT
          handler that requests a dump. *)
}

val default_config : config
(** Loopback, ephemeral port, no databases, auto-sized pool,
    [max_inflight = 4], [max_queue = 64], no shedding, no default
    deadline, [max_connections = 64], cache on, no slow capture
    ([slow_threshold = infinity], [slow_capacity = 32]), access log on,
    log level [Info], monitor at 1 s, no SLOs, no flight recorder. *)

type t

val start : config -> t
(** Validate the configuration ([Invalid_argument] on an empty database
    list, duplicate or empty names, non-positive bounds or
    [slow_capacity < 1]), spin up pool, scheduler and HTTP server, and
    return the running daemon.  Raises [Unix.Unix_error] if the address
    cannot be bound. *)

val port : t -> int
(** The bound port (resolves ephemeral binds). *)

val scheduler : t -> Scheduler.t
(** The daemon's scheduler (for stats and tests). *)

val wait_quit : t -> unit
(** Block until a [GET /quit] was served (or {!stop} was called). *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, drain in-flight connections and
    admitted requests, then tear down scheduler and pool.  Idempotent. *)
