(** Request scheduler: admission control, bounded queueing and deadline
    enforcement between the HTTP front end and the engine pool.

    A scheduler owns [max_inflight] dedicated worker domains, each
    evaluating one admitted request at a time (requests fan their parallel
    stages out onto the shared engine pool, so per-request parallelism is
    the pool's business — the scheduler bounds {e concurrency}, the pool
    bounds {e parallelism}).  Worker domains — not systhreads — matter:
    the ambient {!Consensus_util.Deadline} token lives in domain-local
    storage, so each request's token is installed for exactly the worker
    evaluating it.

    Admission happens in {!submit}, in order:

    + a shut-down scheduler rejects with [Shutting_down];
    + a full bounded queue ([max_queue] waiting requests) rejects with
      [Queue_full] — the front end's backpressure signal (HTTP 429);
    + engine-queue pressure above [shed_threshold] (the existing
      [engine_queue_depth] gauge, via {!Consensus_engine.Pool.queue_pressure})
      rejects with [Overloaded] — load shedding before the engine drowns
      (HTTP 503).

    Admitted requests carry an optional deadline.  The worker installs the
    request's token as its ambient deadline, so the cooperative checks in
    the engine pool and the sequential kernels abort expired work with
    {!Consensus_util.Deadline.Expired}; requests whose deadline passes
    while still queued fail the same way without running at all.

    Requests may also carry a {!Consensus_obs.Context} trace context: the
    worker installs it alongside the deadline token, so every span the
    evaluation records is tagged with the request id, and the scheduler
    writes queue-wait / run timings into the context for the front end's
    access log and slow-query capture.

    Metrics (when the observability subsystem is enabled):
    [serve_inflight], [serve_queue_depth] gauges;
    [serve_requests_total], [serve_rejected_total],
    [serve_deadline_exceeded_total] counters;
    [serve_request_seconds] histogram over admitted requests
    (admission to completion), whose buckets carry the most recent
    request id as an OpenMetrics exemplar. *)

type t

type reject =
  | Queue_full  (** [max_queue] requests already waiting — back off. *)
  | Overloaded  (** Engine queue pressure above the shed threshold. *)
  | Shutting_down  (** {!shutdown} has begun. *)

val reject_to_string : reject -> string

val create :
  ?shed_threshold:float -> max_inflight:int -> max_queue:int -> unit -> t
(** [create ~max_inflight ~max_queue ()] spawns [max_inflight] worker
    domains (>= 1) over a queue bounded at [max_queue] (>= 0; [0] means
    every request must find an idle worker immediately).
    [shed_threshold] (default [infinity], i.e. never shed) is compared
    against {!Consensus_engine.Pool.queue_pressure}.  Raises
    [Invalid_argument] on non-positive [max_inflight] or negative
    [max_queue]. *)

val submit :
  t ->
  ?deadline:float ->
  ?ctx:Consensus_obs.Context.t ->
  (unit -> 'a) ->
  ('a Consensus_engine.Task.t, reject) result
(** [submit t ~deadline ~ctx work] admits [work] or rejects it, without
    blocking.  [deadline] is a wall-clock budget in seconds from now;
    [ctx] is the request's trace context, installed as the worker's
    ambient context for the evaluation (its timings are filled in before
    the task completes).  On [Ok task],
    {!Consensus_engine.Task.await}[ task] delivers the result — re-raising
    whatever [work] raised, and raising
    {!Consensus_util.Deadline.Expired} if the deadline passed before or
    during evaluation. *)

val run :
  t ->
  ?deadline:float ->
  ?ctx:Consensus_obs.Context.t ->
  (unit -> 'a) ->
  ('a, reject) result
(** [submit] then [await]: blocks the calling thread until the admitted
    request finishes (exceptions re-raised as for {!submit}). *)

val log_access :
  Consensus_obs.Context.t ->
  route:string ->
  family:string option ->
  status:int ->
  unit
(** Emit the per-request access-log line (a {!Consensus_obs.Log} [info]
    event named ["access"]): route, query family, HTTP status, the
    scheduler-recorded queue-wait and run times (milliseconds) and the
    context's cache hit/miss counts, attributed to the context's request
    id.  Called by the front end once the response status is known. *)

val inflight : t -> int
(** Requests currently evaluating (<= [max_inflight]). *)

val queued : t -> int
(** Requests admitted but not yet started. *)

type stats = {
  admitted : int;
  completed : int;  (** includes failed evaluations; excludes rejects *)
  rejected_queue_full : int;
  rejected_overload : int;
  deadline_exceeded : int;
      (** requests that raised [Deadline.Expired] (queued or evaluating) *)
}

val stats : t -> stats
(** Counters since {!create} (always maintained, independent of the
    observability switch). *)

val count_deadline : t -> unit
(** Record a deadline expiry that surfaced as a value instead of an
    exception ({!Consensus.Api.run_result} traps [Deadline.Expired] and
    returns [Error Deadline_exceeded]); keeps [deadline_exceeded] and the
    [serve_deadline_exceeded_total] counter covering both paths. *)

val shutdown : t -> unit
(** Stop admitting ({!submit} returns [Error Shutting_down]), finish every
    already-admitted request, and join the worker domains.  Idempotent. *)
