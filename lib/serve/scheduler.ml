module Obs = Consensus_obs.Obs
module Context = Consensus_obs.Context
module Runtime = Consensus_obs.Runtime
module Log = Consensus_obs.Log
module Json = Consensus_obs.Json
module Pool = Consensus_engine.Pool
module Task = Consensus_engine.Task
module Deadline = Consensus_util.Deadline

type reject = Queue_full | Overloaded | Shutting_down

let reject_to_string = function
  | Queue_full -> "queue full"
  | Overloaded -> "overloaded"
  | Shutting_down -> "shutting down"

(* One queued request: the result cell, the work, the deadline token and
   the trace context that travel with it (workers install both as their
   ambient state; the engine pool then re-installs them around every
   parallel chunk), and the admission timestamp for queue-wait
   accounting. *)
type job =
  | Job : {
      task : 'a Task.t;
      work : unit -> 'a;
      token : Deadline.t;
      ctx : Context.t option;
      admitted : float;
    }
      -> job

type stats = {
  admitted : int;
  completed : int;
  rejected_queue_full : int;
  rejected_overload : int;
  deadline_exceeded : int;
}

type t = {
  max_inflight : int;
  max_queue : int;
  shed_threshold : float;
  mutex : Mutex.t;
  work_available : Condition.t;
  queue : job Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  inflight : int Atomic.t;
  (* stats, maintained unconditionally (the bench reads them with the
     observability subsystem off) *)
  admitted_c : int Atomic.t;
  completed_c : int Atomic.t;
  rej_queue_c : int Atomic.t;
  rej_overload_c : int Atomic.t;
  deadline_c : int Atomic.t;
}

(* ---------- metrics (process-global names; Obs.make is idempotent) ------ *)

let m_inflight =
  Obs.Gauge.make ~help:"Requests currently evaluating in the serve scheduler"
    "serve_inflight"

let m_queue_depth =
  Obs.Gauge.make ~help:"Requests admitted and waiting in the serve queue"
    "serve_queue_depth"

let m_requests =
  Obs.Counter.make ~help:"Requests admitted by the serve scheduler"
    "serve_requests_total"

let m_rejected =
  Obs.Counter.make
    ~help:"Requests rejected at admission (queue full or load shed)"
    "serve_rejected_total"

let m_rejected_queue =
  Obs.Counter.make ~help:"Requests rejected because the serve queue was full"
    "serve_rejected_queue_full_total"

let m_rejected_overload =
  Obs.Counter.make
    ~help:"Requests shed because engine queue pressure exceeded the threshold"
    "serve_rejected_overload_total"

let m_deadline =
  Obs.Counter.make ~help:"Requests that exceeded their deadline"
    "serve_deadline_exceeded_total"

let m_latency =
  Obs.Histogram.make ~help:"Admitted-request latency, admission to completion"
    "serve_request_seconds"

let note_queue_depth t =
  if Obs.enabled () then
    Obs.Gauge.set m_queue_depth (float_of_int (Queue.length t.queue))

let note_inflight t =
  if Obs.enabled () then
    Obs.Gauge.set m_inflight (float_of_int (Atomic.get t.inflight))

(* ---------- workers ---------- *)

(* Evaluation-side deadline expiry can surface as a value rather than an
   exception (Api.run_result traps [Deadline.Expired]); the front end calls
   this so the counter covers both paths. *)
let count_deadline t =
  Atomic.incr t.deadline_c;
  if Obs.enabled () then Obs.Counter.incr m_deadline

let execute t (Job { task; work; token; ctx; admitted }) =
  let t0 = Unix.gettimeofday () in
  Atomic.incr t.inflight;
  note_inflight t;
  (* Evaluate first, complete the bookkeeping, and only then fill the task:
     [Task.run] wakes the awaiting connection, which may immediately read
     {!inflight} or {!stats} — the gauge must already be back down (a failed
     request must not leak an inflight slot, nor appear leaked to an awaiter
     scheduling its next request).  The request's trace context is installed
     outside the deadline token, so even the token's own expiry check is
     attributed to the request. *)
  let outcome =
    match
      Context.with_current_opt ctx (fun () ->
          Deadline.with_current token (fun () ->
              Deadline.check token;
              work ()))
    with
    | v -> Ok v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        (match e with
        | Deadline.Expired -> count_deadline t
        | _ -> ());
        Error (e, bt)
  in
  let t1 = Unix.gettimeofday () in
  (* Timings must be written before [Task.run] publishes completion: the
     awaiting front end reads them for the access log and slow capture. *)
  Option.iter
    (fun c ->
      Context.set_timings c ~queue_wait_s:(t0 -. admitted) ~run_s:(t1 -. t0);
      (* Attribute runtime (GC) pauses overlapping the run window to this
         request: drain the runtime-events ring, then sum the overlap of
         recorded pauses with [t0, t1].  Gated on one atomic load when
         the consumer is off.  Fast requests share a rate-limited drain
         (their pause windows are covered by the next drain anyway) and a
         capped overlap scan — at saturation on a small machine a
         full-ring scan per request is measurable throughput; a slow
         request drains fully and scans the whole ring so its own pauses
         are visible the moment its slow-ring entry is written. *)
      if Runtime.active () then begin
        let slow = t1 -. t0 >= 0.02 in
        if slow then Runtime.poll () else Runtime.poll_if_stale 0.2;
        let max_scan = if slow then max_int else 256 in
        Context.set_gc_pause c (Runtime.pause_s_between ~max_scan ~t0 ~t1 ())
      end)
    ctx;
  Atomic.decr t.inflight;
  note_inflight t;
  Atomic.incr t.completed_c;
  if Obs.enabled () then
    (* Admission-to-completion latency, with the request id as the bucket's
       exemplar: a p99 spike in the exposition names a request the slow
       ring can then explain. *)
    Obs.Histogram.observe
      ?exemplar:(Option.map Context.id ctx)
      m_latency (t1 -. admitted);
  Task.run task (fun () ->
      match outcome with
      | Ok v -> v
      | Error (e, bt) -> Printexc.raise_with_backtrace e bt)

let worker_loop t =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.closed do
      Condition.wait t.work_available t.mutex
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.mutex
    else begin
      let job = Queue.pop t.queue in
      note_queue_depth t;
      Mutex.unlock t.mutex;
      execute t job;
      loop ()
    end
  in
  loop ()

(* ---------- lifecycle ---------- *)

let create ?(shed_threshold = infinity) ~max_inflight ~max_queue () =
  if max_inflight < 1 then
    invalid_arg "Scheduler.create: max_inflight must be >= 1";
  if max_queue < 0 then invalid_arg "Scheduler.create: max_queue must be >= 0";
  let t =
    {
      max_inflight;
      max_queue;
      shed_threshold;
      mutex = Mutex.create ();
      work_available = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [];
      inflight = Atomic.make 0;
      admitted_c = Atomic.make 0;
      completed_c = Atomic.make 0;
      rej_queue_c = Atomic.make 0;
      rej_overload_c = Atomic.make 0;
      deadline_c = Atomic.make 0;
    }
  in
  t.workers <-
    List.init max_inflight (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let reject t reason =
  (match reason with
  | Queue_full -> Atomic.incr t.rej_queue_c
  | Overloaded -> Atomic.incr t.rej_overload_c
  | Shutting_down -> ());
  if Obs.enabled () then begin
    Obs.Counter.incr m_rejected;
    match reason with
    | Queue_full -> Obs.Counter.incr m_rejected_queue
    | Overloaded -> Obs.Counter.incr m_rejected_overload
    | Shutting_down -> ()
  end;
  Error reason

let submit (type a) t ?deadline ?ctx (work : unit -> a) :
    (a Task.t, reject) result =
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    reject t Shutting_down
  end
  else if
    (* A request counts against the queue only when no worker is idle:
       [max_queue = 0] still admits up to [max_inflight] at once. *)
    Queue.length t.queue >= t.max_queue
    && Atomic.get t.inflight + Queue.length t.queue
       >= t.max_inflight + t.max_queue
  then begin
    Mutex.unlock t.mutex;
    reject t Queue_full
  end
  else if Pool.queue_pressure () > t.shed_threshold then begin
    Mutex.unlock t.mutex;
    reject t Overloaded
  end
  else begin
    let token =
      match deadline with None -> Deadline.none | Some s -> Deadline.after s
    in
    let task = Task.create () in
    Queue.push
      (Job { task; work; token; ctx; admitted = Unix.gettimeofday () })
      t.queue;
    note_queue_depth t;
    Atomic.incr t.admitted_c;
    if Obs.enabled () then Obs.Counter.incr m_requests;
    Condition.signal t.work_available;
    Mutex.unlock t.mutex;
    Ok task
  end

let run t ?deadline ?ctx work =
  match submit t ?deadline ?ctx work with
  | Error _ as e -> e
  | Ok task -> Ok (Task.await task)

(* The per-request access-log line.  Emitted by the front end once the
   request has a status, with the scheduler-recorded timings and the
   context's cache accounting; [?ctx] attribution (rather than the ambient)
   because the emitter runs on a connection thread, not the worker. *)
let log_access ctx ~route ~family ~status =
  Log.emit ~ctx Log.Info "access" (fun () ->
      [
        ("route", Json.Str route);
        ( "family",
          match family with Some f -> Json.Str f | None -> Json.Null );
        ("status", Json.Int status);
        ("queue_wait_ms", Json.Float (1000. *. Context.queue_wait_s ctx));
        ("run_ms", Json.Float (1000. *. Context.run_s ctx));
        ("gc_pause_ms", Json.Float (1000. *. Context.gc_pause_s ctx));
        ("cache_hits", Json.Int (Context.cache_hits ctx));
        ("cache_misses", Json.Int (Context.cache_misses ctx));
      ])

let inflight t = Atomic.get t.inflight
let queued t =
  Mutex.lock t.mutex;
  let n = Queue.length t.queue in
  Mutex.unlock t.mutex;
  n

let stats t =
  {
    admitted = Atomic.get t.admitted_c;
    completed = Atomic.get t.completed_c;
    rejected_queue_full = Atomic.get t.rej_queue_c;
    rejected_overload = Atomic.get t.rej_overload_c;
    deadline_exceeded = Atomic.get t.deadline_c;
  }

let shutdown t =
  Mutex.lock t.mutex;
  let workers = t.workers in
  t.closed <- true;
  t.workers <- [];
  Condition.broadcast t.work_available;
  Mutex.unlock t.mutex;
  List.iter Domain.join workers
