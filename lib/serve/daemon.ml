open Consensus_anxor
module Api = Consensus.Api
module Pool = Consensus_engine.Pool
module Task = Consensus_engine.Task
module Deadline = Consensus_util.Deadline
module Obs = Consensus_obs.Obs
module Context = Consensus_obs.Context
module Log = Consensus_obs.Log
module Report = Consensus_obs.Report
module Expose = Consensus_obs.Expose
module Json = Consensus_obs.Json
module Monitor = Consensus_obs.Monitor
module Runtime = Consensus_obs.Runtime
module Slo = Consensus_obs.Slo
module Flight = Consensus_obs.Flight
module Prng = Consensus_util.Prng

let build_version = "1.0.0"

type config = {
  host : string;
  port : int;
  dbs : (string * Db.t) list;
  jobs : int;
  max_inflight : int;
  max_queue : int;
  shed_threshold : float;
  default_deadline : float option;
  max_connections : int;
  cache : bool;
  slow_threshold : float;
  slow_capacity : int;
  access_log : bool;
  log_level : Log.level;
  monitor_interval : float;
  slos : Slo.objective list;
  slo_config : Slo.config;
  flight_dir : string option;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    dbs = [];
    jobs = 0;
    max_inflight = 4;
    max_queue = 64;
    shed_threshold = infinity;
    default_deadline = None;
    max_connections = 64;
    cache = true;
    slow_threshold = infinity;
    slow_capacity = 32;
    access_log = true;
    log_level = Log.Info;
    monitor_interval = 1.0;
    slos = [];
    slo_config = Slo.default_config;
    flight_dir = None;
  }

type t = {
  config : config;
  pool : Pool.t;
  sched : Scheduler.t;
  mutable server : Expose.t option;
  stopped : bool Atomic.t;
  started : float;
  slow_lock : Mutex.t;
  mutable slow : Json.t list; (* newest first, <= slow_capacity entries *)
}

(* ---------- request plumbing ---------- *)

exception Reply of Expose.response

let error_response ~status msg =
  Expose.response ~content_type:"application/json" ~status
    (Protocol.error_body msg)

let fail status msg = raise (Reply (error_response ~status msg))

let json_response ?(status = 200) json =
  Expose.response ~content_type:"application/json" ~status
    (Json.to_string json ^ "\n")

let lookup_db t (req : Expose.request) =
  match List.assoc_opt "db" req.query with
  | Some name -> (
      match List.assoc_opt name t.config.dbs with
      | Some db -> (name, db)
      | None -> fail 404 (Printf.sprintf "unknown database %S" name))
  | None -> (
      match t.config.dbs with
      | [ (name, db) ] -> (name, db)
      | _ -> fail 400 "db parameter required (several databases are resident)")

let int_param (req : Expose.request) name ~default =
  match List.assoc_opt name req.query with
  | None -> default
  | Some v -> (
      match int_of_string_opt v with
      | Some n -> n
      | None -> fail 400 (Printf.sprintf "parameter %s: not an integer: %S" name v))

let bool_param (req : Expose.request) name ~default =
  match List.assoc_opt name req.query with
  | None -> default
  | Some "true" -> true
  | Some "false" -> false
  | Some v ->
      fail 400 (Printf.sprintf "parameter %s: expected true or false, got %S" name v)

let deadline_of t (req : Expose.request) =
  match List.assoc_opt "deadline_ms" req.query with
  | None -> t.config.default_deadline
  | Some v -> (
      match int_of_string_opt v with
      | Some ms when ms > 0 -> Some (float_of_int ms /. 1000.)
      | _ -> fail 400 (Printf.sprintf "parameter deadline_ms: must be a positive integer, got %S" v))

(* Submit to the scheduler and await, translating rejects and queue-side
   deadline expiry to their statuses.  Evaluation-side errors come back as
   values (Api.run_result). *)
let schedule t ?deadline ?ctx work =
  match Scheduler.submit t.sched ?deadline ?ctx work with
  | Error reason ->
      fail (Protocol.status_of_reject reason) (Scheduler.reject_to_string reason)
  | Ok task -> (
      try Task.await task
      with Deadline.Expired -> fail 504 "deadline exceeded")

(* ---------- per-request epilogue: access log and slow capture ---------- *)

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

(* Fold the request's spans (tagged by the ambient context the scheduler
   worker installed) into an explain profile. *)
let profile_of ctx =
  Report.to_obj (Report.of_spans (Obs.request_spans (Context.id ctx)))

let timing_fields ctx =
  [
    ("queue_wait_ms", Json.Float (1000. *. Context.queue_wait_s ctx));
    ("run_ms", Json.Float (1000. *. Context.run_s ctx));
    ("gc_pause_ms", Json.Float (1000. *. Context.gc_pause_s ctx));
    ("cache_hits", Json.Int (Context.cache_hits ctx));
    ("cache_misses", Json.Int (Context.cache_misses ctx));
  ]

(* Run once per request on the connection thread, after the response status
   is known: emit the access-log line, and — when the request's wall time
   (queue wait + run) reached [slow_threshold], or the client asked for an
   inline explain — fold its spans into a profile.  Slow requests keep the
   profile in the bounded ring behind [GET /debug/slow]; the returned
   profile (if any) is embedded in the response.  Both consumers read the
   same context cells the scheduler and cache wrote, so the access log, the
   slow entry and the inline profile agree on timings and cache traffic. *)
let finish_request t ctx ~route ~family ~status ~explain =
  let wall = Context.queue_wait_s ctx +. Context.run_s ctx in
  let slow = wall >= t.config.slow_threshold in
  let profile = if slow || explain then Some (profile_of ctx) else None in
  (match (slow, profile) with
  | true, Some p ->
      let entry =
        Json.Obj
          ([
             ("request", Json.Str (Context.id ctx));
             ("route", Json.Str route);
             ( "family",
               match family with Some f -> Json.Str f | None -> Json.Null );
             ("status", Json.Int status);
           ]
          @ timing_fields ctx
          @ [ ("profile", p) ])
      in
      Mutex.lock t.slow_lock;
      t.slow <- entry :: take (t.config.slow_capacity - 1) t.slow;
      Mutex.unlock t.slow_lock
  | _ -> ());
  if t.config.access_log then Scheduler.log_access ctx ~route ~family ~status;
  profile

(* Wrap a request body that already has a context: produce the response,
   then run the epilogue with the final status — including on the [Reply]
   escape path, so rejected and expired requests still hit the access log
   and the slow ring. *)
let with_epilogue t ctx ~route ~family ~explain run =
  match run () with
  | status, render ->
      let profile = finish_request t ctx ~route ~family ~status ~explain in
      json_response ~status (render profile)
  | exception Reply resp ->
      ignore
        (finish_request t ctx ~route ~family ~status:resp.Expose.status ~explain);
      raise (Reply resp)

let serve_query t (req : Expose.request) =
  let db_name, db = lookup_db t req in
  let deadline = deadline_of t req in
  let seed = int_param req "seed" ~default:42 in
  let cache = bool_param req "cache" ~default:true in
  let explain = bool_param req "explain" ~default:false in
  let label = List.assoc_opt "label" req.query in
  let query =
    match Protocol.parse_query_body req.body with
    | Ok q -> q
    | Error msg -> fail 400 msg
  in
  let ctx = Context.fresh ?label () in
  with_epilogue t ctx ~route:"/query"
    ~family:(Some (Api.query_name query))
    ~explain
    (fun () ->
      let work () =
        let options =
          Api.Options.make ~pool:t.pool ~rng:(Prng.create ~seed ()) ~cache
            ?label ()
        in
        let t0 = Unix.gettimeofday () in
        let result = Api.run_result ~options db query in
        (result, Unix.gettimeofday () -. t0)
      in
      let result, elapsed = schedule t ?deadline ~ctx work in
      (match result with
      | Error Api.Error.Deadline_exceeded -> Scheduler.count_deadline t.sched
      | _ -> ());
      let status =
        match result with Ok _ -> 200 | Error e -> Protocol.status_of_error e
      in
      ( status,
        fun profile ->
          Protocol.result_json ~request:(Context.id ctx) ?profile ~db_name
            ~query ~elapsed ~db result ))

let serve_batch t (req : Expose.request) =
  let db_name, db = lookup_db t req in
  let deadline = deadline_of t req in
  let seed = int_param req "seed" ~default:42 in
  let cache = bool_param req "cache" ~default:true in
  let label = List.assoc_opt "label" req.query in
  let queries =
    match Protocol.parse_batch_body req.body with
    | Ok qs -> qs
    | Error msg -> fail 400 msg
  in
  let ctx = Context.fresh ?label () in
  with_epilogue t ctx ~route:"/batch" ~family:None ~explain:false (fun () ->
      (* The whole batch occupies one scheduler slot and runs under one
         deadline; queries evaluate in order with per-query rng seeds
         [seed + i], exactly like CLI batch, so a served batch and a local
         one agree answer for answer. *)
      let work () =
        List.mapi
          (fun i query ->
            let options =
              Api.Options.make ~pool:t.pool
                ~rng:(Prng.create ~seed:(seed + i) ())
                ~cache ?label ()
            in
            let t0 = Unix.gettimeofday () in
            let result = Api.run_result ~options db query in
            (query, result, Unix.gettimeofday () -. t0))
          queries
      in
      let results = schedule t ?deadline ~ctx work in
      List.iter
        (fun (_, result, _) ->
          match result with
          | Error Api.Error.Deadline_exceeded -> Scheduler.count_deadline t.sched
          | _ -> ())
        results;
      ( 200,
        fun _profile ->
          Json.Obj
            [
              ("request", Json.Str (Context.id ctx));
              ("db", Json.Str db_name);
              ( "results",
                Json.List
                  (List.map
                     (fun (query, result, elapsed) ->
                       Protocol.result_json ~db_name ~query ~elapsed ~db result)
                     results) );
            ] ))

let serve_dbs t =
  json_response
    (Json.Obj
       [
         ( "dbs",
           Json.List
             (List.map
                (fun (name, db) ->
                  Json.Obj
                    [
                      ("name", Json.Str name);
                      ("keys", Json.Int (Db.num_keys db));
                      ("independent", Json.Bool (Db.is_independent db));
                    ])
                t.config.dbs) );
       ])

(* Richer liveness payload than the Expose built-in: uptime, load and the
   resident databases, so one probe answers "is it up and what is it
   serving". *)
let serve_healthz t =
  json_response
    (Json.Obj
       [
         ( "status",
           Json.Str (if Slo.degraded () then "degraded" else "ok") );
         ("version", Json.Str build_version);
         ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started));
         ("inflight", Json.Int (Scheduler.inflight t.sched));
         ("queue_depth", Json.Int (Scheduler.queued t.sched));
         ( "dbs",
           Json.List
             (List.map (fun (name, _) -> Json.Str name) t.config.dbs) );
       ])

let limit_param req =
  let limit = int_param req "limit" ~default:max_int in
  if limit < 0 then fail 400 "parameter limit: must be >= 0";
  limit

let serve_slow t (req : Expose.request) =
  let limit = limit_param req in
  Mutex.lock t.slow_lock;
  let entries = t.slow in
  Mutex.unlock t.slow_lock;
  json_response (Json.Obj [ ("slow", Json.List (take limit entries)) ])

let serve_log (req : Expose.request) =
  let limit = limit_param req in
  let events = Log.recent ~limit () in
  json_response
    (Json.Obj [ ("events", Json.List (List.map Log.event_json events)) ])

(* Response/error volume counters: the denominators and numerators of the
   error-rate SLO.  Counted where every handler response funnels through,
   so 4xx rejections and 5xx failures are both visible. *)
let m_responses =
  Obs.Counter.make ~help:"Responses produced by the daemon handler"
    "serve_responses_total"

let m_errors =
  Obs.Counter.make ~help:"Error (5xx) responses produced by the daemon handler"
    "serve_errors_total"

let handler t (req : Expose.request) =
  let route () =
    match (req.meth, req.path) with
    | "POST", "/query" -> Some (serve_query t req)
    | "POST", "/batch" -> Some (serve_batch t req)
    | "GET", "/dbs" -> Some (serve_dbs t)
    | "GET", "/healthz" -> Some (serve_healthz t)
    | "GET", "/debug/slow" -> Some (serve_slow t req)
    | "GET", "/debug/log" -> Some (serve_log req)
    | _, ("/query" | "/batch" | "/dbs" | "/healthz" | "/debug/slow" | "/debug/log")
      ->
        Some (error_response ~status:405 "method not allowed")
    | _ -> None
  in
  let resp = try route () with Reply resp -> Some resp in
  (match resp with
  | Some r ->
      Obs.Counter.incr m_responses;
      if r.Expose.status >= 500 then Obs.Counter.incr m_errors
  | None -> ());
  resp

(* ---------- lifecycle ---------- *)

let validate config =
  if config.dbs = [] then invalid_arg "Daemon.start: no resident databases";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (name, _) ->
      if name = "" then invalid_arg "Daemon.start: empty database name";
      if Hashtbl.mem seen name then
        invalid_arg (Printf.sprintf "Daemon.start: duplicate database name %S" name);
      Hashtbl.add seen name ())
    config.dbs;
  if config.jobs < 0 then invalid_arg "Daemon.start: jobs must be >= 0";
  if config.slow_capacity < 1 then
    invalid_arg "Daemon.start: slow_capacity must be >= 1"

let start config =
  validate config;
  (* The service contract includes /metrics, and admission control keys off
     the engine queue-depth gauge — observability is always on here. *)
  Obs.set_enabled true;
  Log.set_level config.log_level;
  if config.cache then Consensus_cache.Cache.set_enabled true;
  let pool = Pool.create ~jobs:config.jobs () in
  let sched =
    Scheduler.create ~shed_threshold:config.shed_threshold
      ~max_inflight:config.max_inflight ~max_queue:config.max_queue ()
  in
  let t =
    {
      config;
      pool;
      sched;
      server = None;
      stopped = Atomic.make false;
      started = Unix.gettimeofday ();
      slow_lock = Mutex.create ();
      slow = [];
    }
  in
  (try
     (* Backlog scales with the connection cap so a thundering herd of
        clients queues in the kernel instead of retransmitting SYNs. *)
     t.server <-
       Some
         (Expose.start ~host:config.host
            ~backlog:(max 128 (4 * config.max_connections))
            ~max_connections:config.max_connections
            ~handler:(handler t) ~port:config.port ())
   with e ->
     Scheduler.shutdown sched;
     Pool.shutdown pool;
     raise e);
  (* Continuous telemetry, brought up once the server is committed: the
     runtime-events consumer (GC-pause attribution), the metrics sampler
     (history rings + SLO evaluation + flight triggers on its tick), the
     declared objectives and the flight recorder. *)
  if config.monitor_interval > 0. then begin
    Runtime.start ();
    Monitor.start ~interval:config.monitor_interval ()
  end;
  if config.slos <> [] then Slo.install ~config:config.slo_config config.slos;
  (match config.flight_dir with
  | None -> ()
  | Some dir ->
      Flight.configure ~dir ();
      (* SIGQUIT asks for a flight dump; the handler only sets a flag —
         the dump happens on the next monitor tick, off signal context. *)
      ignore
        (try
           Sys.signal Sys.sigquit
             (Sys.Signal_handle (fun _ -> Flight.request "sigquit"))
         with _ -> Sys.Signal_default));
  t

let port t = match t.server with Some s -> Expose.port s | None -> t.config.port
let scheduler t = t.sched

let wait_quit t =
  match t.server with Some s -> Expose.wait_quit s | None -> ()

let stop t =
  if not (Atomic.exchange t.stopped true) then begin
    (* Order matters: the front end drains its connection threads first
       (they may be awaiting scheduler tasks, so the scheduler must still
       be alive), then the scheduler finishes admitted requests, then the
       pool goes down. *)
    Option.iter Expose.stop t.server;
    Scheduler.shutdown t.sched;
    Pool.shutdown t.pool;
    if t.config.flight_dir <> None then Flight.disable ();
    if t.config.slos <> [] then Slo.clear ();
    if t.config.monitor_interval > 0. then begin
      Monitor.stop ();
      Runtime.stop ()
    end
  end
