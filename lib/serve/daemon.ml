open Consensus_anxor
module Api = Consensus.Api
module Pool = Consensus_engine.Pool
module Task = Consensus_engine.Task
module Deadline = Consensus_util.Deadline
module Obs = Consensus_obs.Obs
module Expose = Consensus_obs.Expose
module Json = Consensus_obs.Json
module Prng = Consensus_util.Prng

type config = {
  host : string;
  port : int;
  dbs : (string * Db.t) list;
  jobs : int;
  max_inflight : int;
  max_queue : int;
  shed_threshold : float;
  default_deadline : float option;
  max_connections : int;
  cache : bool;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    dbs = [];
    jobs = 0;
    max_inflight = 4;
    max_queue = 64;
    shed_threshold = infinity;
    default_deadline = None;
    max_connections = 64;
    cache = true;
  }

type t = {
  config : config;
  pool : Pool.t;
  sched : Scheduler.t;
  mutable server : Expose.t option;
  stopped : bool Atomic.t;
}

(* ---------- request plumbing ---------- *)

exception Reply of Expose.response

let error_response ~status msg =
  Expose.response ~content_type:"application/json" ~status
    (Protocol.error_body msg)

let fail status msg = raise (Reply (error_response ~status msg))

let json_response ?(status = 200) json =
  Expose.response ~content_type:"application/json" ~status
    (Json.to_string json ^ "\n")

let lookup_db t (req : Expose.request) =
  match List.assoc_opt "db" req.query with
  | Some name -> (
      match List.assoc_opt name t.config.dbs with
      | Some db -> (name, db)
      | None -> fail 404 (Printf.sprintf "unknown database %S" name))
  | None -> (
      match t.config.dbs with
      | [ (name, db) ] -> (name, db)
      | _ -> fail 400 "db parameter required (several databases are resident)")

let int_param (req : Expose.request) name ~default =
  match List.assoc_opt name req.query with
  | None -> default
  | Some v -> (
      match int_of_string_opt v with
      | Some n -> n
      | None -> fail 400 (Printf.sprintf "parameter %s: not an integer: %S" name v))

let bool_param (req : Expose.request) name ~default =
  match List.assoc_opt name req.query with
  | None -> default
  | Some "true" -> true
  | Some "false" -> false
  | Some v ->
      fail 400 (Printf.sprintf "parameter %s: expected true or false, got %S" name v)

let deadline_of t (req : Expose.request) =
  match List.assoc_opt "deadline_ms" req.query with
  | None -> t.config.default_deadline
  | Some v -> (
      match int_of_string_opt v with
      | Some ms when ms > 0 -> Some (float_of_int ms /. 1000.)
      | _ -> fail 400 (Printf.sprintf "parameter deadline_ms: must be a positive integer, got %S" v))

(* Submit to the scheduler and await, translating rejects and queue-side
   deadline expiry to their statuses.  Evaluation-side errors come back as
   values (Api.run_result). *)
let schedule t ?deadline work =
  match Scheduler.submit t.sched ?deadline work with
  | Error reason ->
      fail (Protocol.status_of_reject reason) (Scheduler.reject_to_string reason)
  | Ok task -> (
      try Task.await task
      with Deadline.Expired -> fail 504 "deadline exceeded")

let serve_query t (req : Expose.request) =
  let db_name, db = lookup_db t req in
  let deadline = deadline_of t req in
  let seed = int_param req "seed" ~default:42 in
  let cache = bool_param req "cache" ~default:true in
  let label = List.assoc_opt "label" req.query in
  let query =
    match Protocol.parse_query_body req.body with
    | Ok q -> q
    | Error msg -> fail 400 msg
  in
  let work () =
    let options =
      Api.Options.make ~pool:t.pool ~rng:(Prng.create ~seed ()) ~cache ?label ()
    in
    let t0 = Unix.gettimeofday () in
    let result = Api.run_result ~options db query in
    (result, Unix.gettimeofday () -. t0)
  in
  let result, elapsed = schedule t ?deadline work in
  (match result with
  | Error Api.Error.Deadline_exceeded -> Scheduler.count_deadline t.sched
  | _ -> ());
  let status =
    match result with Ok _ -> 200 | Error e -> Protocol.status_of_error e
  in
  json_response ~status (Protocol.result_json ~db_name ~query ~elapsed ~db result)

let serve_batch t (req : Expose.request) =
  let db_name, db = lookup_db t req in
  let deadline = deadline_of t req in
  let seed = int_param req "seed" ~default:42 in
  let cache = bool_param req "cache" ~default:true in
  let label = List.assoc_opt "label" req.query in
  let queries =
    match Protocol.parse_batch_body req.body with
    | Ok qs -> qs
    | Error msg -> fail 400 msg
  in
  (* The whole batch occupies one scheduler slot and runs under one
     deadline; queries evaluate in order with per-query rng seeds
     [seed + i], exactly like CLI batch, so a served batch and a local one
     agree answer for answer. *)
  let work () =
    List.mapi
      (fun i query ->
        let options =
          Api.Options.make ~pool:t.pool
            ~rng:(Prng.create ~seed:(seed + i) ())
            ~cache ?label ()
        in
        let t0 = Unix.gettimeofday () in
        let result = Api.run_result ~options db query in
        (query, result, Unix.gettimeofday () -. t0))
      queries
  in
  let results = schedule t ?deadline work in
  List.iter
    (fun (_, result, _) ->
      match result with
      | Error Api.Error.Deadline_exceeded -> Scheduler.count_deadline t.sched
      | _ -> ())
    results;
  json_response
    (Json.Obj
       [
         ("db", Json.Str db_name);
         ( "results",
           Json.List
             (List.map
                (fun (query, result, elapsed) ->
                  Protocol.result_json ~db_name ~query ~elapsed ~db result)
                results) );
       ])

let serve_dbs t =
  json_response
    (Json.Obj
       [
         ( "dbs",
           Json.List
             (List.map
                (fun (name, db) ->
                  Json.Obj
                    [
                      ("name", Json.Str name);
                      ("keys", Json.Int (Db.num_keys db));
                      ("independent", Json.Bool (Db.is_independent db));
                    ])
                t.config.dbs) );
       ])

let handler t (req : Expose.request) =
  let route () =
    match (req.meth, req.path) with
    | "POST", "/query" -> Some (serve_query t req)
    | "POST", "/batch" -> Some (serve_batch t req)
    | "GET", "/dbs" -> Some (serve_dbs t)
    | _, ("/query" | "/batch" | "/dbs") ->
        Some (error_response ~status:405 "method not allowed")
    | _ -> None
  in
  try route () with Reply resp -> Some resp

(* ---------- lifecycle ---------- *)

let validate config =
  if config.dbs = [] then invalid_arg "Daemon.start: no resident databases";
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (name, _) ->
      if name = "" then invalid_arg "Daemon.start: empty database name";
      if Hashtbl.mem seen name then
        invalid_arg (Printf.sprintf "Daemon.start: duplicate database name %S" name);
      Hashtbl.add seen name ())
    config.dbs;
  if config.jobs < 0 then invalid_arg "Daemon.start: jobs must be >= 0"

let start config =
  validate config;
  (* The service contract includes /metrics, and admission control keys off
     the engine queue-depth gauge — observability is always on here. *)
  Obs.set_enabled true;
  if config.cache then Consensus_cache.Cache.set_enabled true;
  let pool = Pool.create ~jobs:config.jobs () in
  let sched =
    Scheduler.create ~shed_threshold:config.shed_threshold
      ~max_inflight:config.max_inflight ~max_queue:config.max_queue ()
  in
  let t = { config; pool; sched; server = None; stopped = Atomic.make false } in
  (try
     (* Backlog scales with the connection cap so a thundering herd of
        clients queues in the kernel instead of retransmitting SYNs. *)
     t.server <-
       Some
         (Expose.start ~host:config.host
            ~backlog:(max 128 (4 * config.max_connections))
            ~max_connections:config.max_connections
            ~handler:(handler t) ~port:config.port ())
   with e ->
     Scheduler.shutdown sched;
     Pool.shutdown pool;
     raise e);
  t

let port t = match t.server with Some s -> Expose.port s | None -> t.config.port
let scheduler t = t.sched

let wait_quit t =
  match t.server with Some s -> Expose.wait_quit s | None -> ()

let stop t =
  if not (Atomic.exchange t.stopped true) then begin
    (* Order matters: the front end drains its connection threads first
       (they may be awaiting scheduler tasks, so the scheduler must still
       be alive), then the scheduler finishes admitted requests, then the
       pool goes down. *)
    Option.iter Expose.stop t.server;
    Scheduler.shutdown t.sched;
    Pool.shutdown t.pool
  end
