open Consensus_anxor
module Api = Consensus.Api
module Query_text = Consensus.Query_text
module Formats = Consensus_textio.Formats

type case = { query : Api.query; db : Db.t }

let placeholder_db = Db.independent [ (0, 0., 0.5) ]

let float_repr x =
  (* shortest round-trip representation, as in Sexp_io *)
  let s = Printf.sprintf "%.12g" x in
  if float_of_string s = x then s else Printf.sprintf "%.17g" x

let to_string { query; db } =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "query %s\n"
       (Query_text.print_proto (Query_text.proto_of_query query)));
  (match query with
  | Api.Aggregate (probs, _) ->
      Array.iter
        (fun row ->
          Array.to_list row |> List.map float_repr |> String.concat " "
          |> Buffer.add_string buf;
          Buffer.add_char buf '\n')
        probs
  | _ ->
      Buffer.add_string buf (Sexp_io.db_to_string db);
      Buffer.add_char buf '\n');
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s in
  let significant l =
    let l = String.trim l in
    l <> "" && l.[0] <> ';' && l.[0] <> '#'
  in
  match List.partition significant lines with
  | [], _ -> Error "empty case"
  | qline :: rest, _ -> (
      let qline = String.trim qline in
      match String.index_opt qline ' ' with
      | Some i when String.sub qline 0 i = "query" -> (
          let spec = String.sub qline (i + 1) (String.length qline - i - 1) in
          (* The query line is the shared wire syntax; the payload after it
             depends on the family — an aggregate matrix or a database. *)
          match Query_text.parse_proto_line spec with
          | Error e -> Error e
          | Ok None -> Error "blank query line"
          | Ok (Some (Query_text.Aggregate_query flavor)) -> (
              match Formats.matrix_of_lines rest with
              | probs ->
                  Ok { query = Api.Aggregate (probs, flavor); db = placeholder_db }
              | exception Failure e -> Error e)
          | Ok (Some (Query_text.Db_query query)) -> (
              match Sexp_io.db_of_string (String.concat "\n" rest) with
              | Ok db -> Ok { query; db }
              | Error e -> Error e))
      | _ -> Error "expected a 'query ...' first line")

let file_name case =
  Printf.sprintf "case-%s.txt"
    (String.sub (Digest.to_hex (Digest.string (to_string case))) 0 12)

let save ~dir case =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (file_name case) in
  let oc = open_out path in
  output_string oc (to_string case);
  close_out oc;
  path

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load path =
  match of_string (read_file path) with
  | Ok c -> Ok c
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | exception Sys_error e -> Error e

let load_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 5
           && String.sub f 0 5 = "case-"
           && Filename.check_suffix f ".txt")
    |> List.sort compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           match load path with
           | Ok c -> (f, c)
           | Error e -> failwith e)
