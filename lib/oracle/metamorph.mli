(** Metamorphic rewrites: answer-preserving instance transformations.

    Each rewrite maps a database to an equivalent one — equivalent at the
    level its invariant needs: the leaf-set distribution (relabeling,
    sibling shuffles, normalization, zero-probability padding) or the
    key/payload distribution (x-tuple splitting and merging).  The paired
    invariant is always the same: the {e optimal expected distance} under
    the query's target metric must be unchanged, so for a query answered by
    an exact algorithm ({!Api.exact}) the two runs must report equal
    optima.  Heuristic paths are exempt — an isomorphic instance may
    legitimately steer a randomized pivot elsewhere. *)

open Consensus_anxor
module Api = Consensus.Api

type rewrite

val name : rewrite -> string

val all : rewrite list
(** Every rewrite: [relabel-keys], [shuffle-siblings], [simplify],
    [pad-absent], [split-leaf], [merge-twins]. *)

val supported : Api.query -> bool
(** Tree-backed queries the metamorphic layer covers.  Aggregate queries
    (matrix instances, no tree) and the combinations {!Api.run} rejects
    ({!Api.Unsupported} medians) are excluded. *)

val compatible : Db.t -> Api.query -> bool
(** Shape preconditions of {!Api.run} for this query on this database:
    tuple-independence / BID shape for Jaccard worlds, distinct scores for
    ranking families.  Both the original and the rewritten instance must
    pass before the invariant applies. *)

val apply : rewrite -> Consensus_util.Prng.t -> Db.t -> Api.query -> Db.t option
(** Rewrite the instance for differential checking of the query.  [None]
    when the rewrite does not apply to the query's family (e.g. payload
    -level rewrites outside clustering), when the rewritten tree fails
    database validation, or when it breaks a shape precondition the query
    needs ({!compatible}) — skipping, not failing. *)
