open Consensus_anxor
module Api = Consensus.Api
module Topk_list = Consensus_ranking.Topk_list

(* Brute-force budget: candidate-space * world-space products above this
   are rejected by [solvable]/[solve] rather than ground the fuzz loop. *)
let ops_budget = 40_000_000

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x land (x - 1)) (acc + 1) in
  go x 0

type world = { p : float; mask : int; alts : Db.alt list }

type rank_tables = {
  pos : float array array;
      (* pos.(kp).(r-1) = Pr(rank of key kp = r), r = 1..nk; index nk = absent *)
  dis : float array array;
      (* dis.(a).(b) = Pr(ordering key a before key b disagrees with the world) *)
}

type t = {
  db : Db.t;
  n : int;
  keys : int array;
  kpos : (int, int) Hashtbl.t;
  worlds : world array;
  topk_cache : (int, Topk_list.t array) Hashtbl.t;
  mutable rank_cache : rank_tables option;
  mutable cooc_cache : float array array option;
}

let default_max_leaves = 18

let prepare ?(max_leaves = default_max_leaves) db =
  let n = Db.num_alts db in
  if max_leaves > 24 then
    invalid_arg "Exact.prepare: max_leaves above 24 is not supported";
  if n > max_leaves then
    invalid_arg
      (Printf.sprintf "Exact.prepare: %d leaves exceeds the oracle budget (%d)"
         n max_leaves);
  let tbl = Hashtbl.create 1024 in
  Worlds.fold (Db.itree db) ~init:() ~f:(fun () p ids ->
      if p > 0. then begin
        let mask = List.fold_left (fun m i -> m lor (1 lsl i)) 0 ids in
        Hashtbl.replace tbl mask
          (p +. Option.value (Hashtbl.find_opt tbl mask) ~default:0.)
      end);
  let worlds =
    Hashtbl.fold (fun mask p acc -> (mask, p) :: acc) tbl []
    |> List.sort (fun (m1, _) (m2, _) -> compare m1 m2)
    |> List.map (fun (mask, p) ->
           let alts =
             List.init n Fun.id
             |> List.filter_map (fun i ->
                    if mask land (1 lsl i) <> 0 then Some (Db.alt db i) else None)
           in
           { p; mask; alts })
    |> Array.of_list
  in
  let keys = Db.keys db in
  let kpos = Hashtbl.create (Array.length keys) in
  Array.iteri (fun i k -> Hashtbl.replace kpos k i) keys;
  {
    db;
    n;
    keys;
    kpos;
    worlds;
    topk_cache = Hashtbl.create 4;
    rank_cache = None;
    cooc_cache = None;
  }

let db t = t.db
let num_worlds t = Array.length t.worlds
let total_probability t = Array.fold_left (fun acc w -> acc +. w.p) 0. t.worlds
let kpos t key = Hashtbl.find t.kpos key

(* ---------- per-family world projections (memoized) ---------- *)

let topk_lists t ~k =
  match Hashtbl.find_opt t.topk_cache k with
  | Some a -> a
  | None ->
      let a = Array.map (fun w -> Topk_list.of_world ~k w.alts) t.worlds in
      Hashtbl.add t.topk_cache k a;
      a

let world_labels t (w : world) =
  let nk = Array.length t.keys in
  let labels = Array.make nk (-1) in
  let class_of = Hashtbl.create 8 in
  let next = ref 0 in
  List.iter
    (fun (a : Db.alt) ->
      let l =
        match Hashtbl.find_opt class_of a.value with
        | Some l -> l
        | None ->
            let l = !next in
            incr next;
            Hashtbl.add class_of a.value l;
            l
      in
      labels.(kpos t a.key) <- l)
    w.alts;
  labels

let rank_tables t =
  match t.rank_cache with
  | Some r -> r
  | None ->
      let nk = Array.length t.keys in
      let pos = Array.make_matrix nk (nk + 1) 0. in
      let dis = Array.make_matrix nk nk 0. in
      Array.iter
        (fun w ->
          let wpos = Array.make nk 0 (* 0 = absent *) in
          let sorted =
            List.sort (fun (a : Db.alt) b -> Float.compare b.value a.value) w.alts
          in
          List.iteri (fun i (a : Db.alt) -> wpos.(kpos t a.key) <- i + 1) sorted;
          Array.iteri
            (fun kp r ->
              let idx = if r = 0 then nk else r - 1 in
              pos.(kp).(idx) <- pos.(kp).(idx) +. w.p)
            wpos;
          for a = 0 to nk - 1 do
            for b = 0 to nk - 1 do
              if a <> b then begin
                let ra = wpos.(a) and rb = wpos.(b) in
                if (ra > 0 && rb > 0 && rb < ra) || (ra = 0 && rb > 0) then
                  dis.(a).(b) <- dis.(a).(b) +. w.p
              end
            done
          done)
        t.worlds;
      let r = { pos; dis } in
      t.rank_cache <- Some r;
      r

let cooc t =
  match t.cooc_cache with
  | Some m -> m
  | None ->
      let nk = Array.length t.keys in
      let m = Array.make_matrix nk nk 0. in
      Array.iter
        (fun w ->
          let l = world_labels t w in
          for i = 0 to nk - 1 do
            for j = i + 1 to nk - 1 do
              if l.(i) = l.(j) then m.(i).(j) <- m.(i).(j) +. w.p
            done
          done)
        t.worlds;
      t.cooc_cache <- Some m;
      m

(* ---------- distances ---------- *)

let jaccard_masks m1 m2 =
  let union = popcount (m1 lor m2) in
  if union = 0 then 0.
  else float_of_int (popcount (m1 lxor m2)) /. float_of_int union

let expected_world_dist t metric cmask =
  let dist =
    match (metric : Api.set_metric) with
    | Api.Set_sym_diff -> fun w -> float_of_int (popcount (cmask lxor w.mask))
    | Api.Set_jaccard -> fun w -> jaccard_masks cmask w.mask
  in
  Array.fold_left (fun acc w -> acc +. (w.p *. dist w)) 0. t.worlds

let expected_topk_dist t ~k metric tau =
  let lists = topk_lists t ~k in
  let acc = ref 0. in
  Array.iteri
    (fun i l ->
      acc := !acc +. (t.worlds.(i).p *. Consensus.Topk_consensus.eval_metric metric ~k tau l))
    lists;
  !acc

let expected_rank_footrule t sigma =
  let nk = Array.length t.keys in
  let { pos; _ } = rank_tables t in
  let acc = ref 0. in
  Array.iteri
    (fun i key ->
      let kp = kpos t key in
      for idx = 0 to nk do
        let r = if idx = nk then nk + 1 else idx + 1 in
        acc := !acc +. (pos.(kp).(idx) *. float_of_int (abs (i + 1 - r)))
      done)
    sigma;
  !acc

let expected_rank_kendall t sigma =
  let { dis; _ } = rank_tables t in
  let acc = ref 0. in
  let n = Array.length sigma in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      acc := !acc +. dis.(kpos t sigma.(a)).(kpos t sigma.(b))
    done
  done;
  !acc

let expected_clustering t c =
  let m = cooc t in
  let nk = Array.length t.keys in
  let acc = ref 0. in
  for i = 0 to nk - 1 do
    for j = i + 1 to nk - 1 do
      acc := !acc +. (if c.(i) = c.(j) then 1. -. m.(i).(j) else m.(i).(j))
    done
  done;
  !acc

(* ---------- aggregates (matrix instances) ---------- *)

let max_assignments = 200_000

let aggregate_dims probs =
  let n = Array.length probs in
  if n = 0 then invalid_arg "Exact: empty aggregate instance";
  (n, Array.length probs.(0))

let aggregate_solvable probs =
  let n, m = aggregate_dims probs in
  m > 0 && float_of_int m ** float_of_int n <= float_of_int max_assignments

let aggregate_worlds probs =
  if not (aggregate_solvable probs) then
    invalid_arg "Exact: aggregate instance exceeds the assignment budget";
  let n, m = aggregate_dims probs in
  let tbl = Hashtbl.create 256 in
  let counts = Array.make m 0 in
  let rec go i p =
    if p = 0. then ()
    else if i = n then begin
      let key = Array.to_list counts in
      Hashtbl.replace tbl key
        (p +. Option.value (Hashtbl.find_opt tbl key) ~default:0.)
    end
    else
      for g = 0 to m - 1 do
        counts.(g) <- counts.(g) + 1;
        go (i + 1) (p *. probs.(i).(g));
        counts.(g) <- counts.(g) - 1
      done
  in
  go 0 1.;
  Hashtbl.fold
    (fun key p acc -> (Array.of_list (List.map float_of_int key), p) :: acc)
    tbl []
  |> List.sort compare

let sq_dist c r =
  let acc = ref 0. in
  Array.iteri (fun i x -> acc := !acc +. ((x -. r.(i)) *. (x -. r.(i)))) c;
  !acc

let expected_aggregate probs c =
  aggregate_worlds probs
  |> List.fold_left (fun acc (r, p) -> acc +. (p *. sq_dist c r)) 0.

let solve_aggregate probs flavor =
  let worlds = aggregate_worlds probs in
  let expected c =
    List.fold_left (fun acc (r, p) -> acc +. (p *. sq_dist c r)) 0. worlds
  in
  match (flavor : Api.flavor) with
  | Api.Mean ->
      (* The unrestricted argmin over real vectors is the expected count
         vector (calculus on the decomposed quadratic). *)
      let _, m = aggregate_dims probs in
      let mean = Array.make m 0. in
      List.iter
        (fun (r, p) -> Array.iteri (fun i x -> mean.(i) <- mean.(i) +. (p *. x)) r)
        worlds;
      (mean, expected mean)
  | Api.Median ->
      List.fold_left
        (fun acc (r, _) ->
          let d = expected r in
          match acc with Some (_, bd) when bd <= d -> acc | _ -> Some (r, d))
        None worlds
      |> Option.get

(* ---------- candidate spaces ---------- *)

let rec arrangements pool len =
  if len = 0 then [ [] ]
  else
    List.concat_map
      (fun x ->
        List.map
          (fun rest -> x :: rest)
          (arrangements (List.filter (fun y -> y <> x) pool) (len - 1)))
      pool

let num_arrangements nk len =
  let rec go i acc = if i = len then acc else go (i + 1) (acc * (nk - i)) in
  go 0 1

(* Set partitions as restricted-growth strings. *)
let partitions n =
  if n = 0 then []
  else
    let rec go i maxl acc =
      if i = n then [ Array.of_list (List.rev acc) ]
      else
        List.concat_map
          (fun l -> go (i + 1) (max maxl l) (l :: acc))
          (List.init (maxl + 2) Fun.id)
    in
    go 1 0 [ 0 ]

let dedup_arrays lists =
  let tbl = Hashtbl.create 64 in
  List.filter
    (fun a ->
      if Hashtbl.mem tbl a then false
      else begin
        Hashtbl.add tbl a ();
        true
      end)
    lists

(* ---------- answers ---------- *)

type answer =
  | World of int list
  | Topk of int array
  | Rank of int array
  | Counts of float array
  | Clustering of int array

let of_api : Api.answer -> answer = function
  | Api.World_answer { leaves; _ } -> World leaves
  | Api.Topk_answer { keys; _ } -> Topk keys
  | Api.Rank_answer { keys; _ } -> Rank keys
  | Api.Aggregate_answer { counts; _ } -> Counts counts
  | Api.Cluster_answer { labels; _ } -> Clustering labels

let mask_of_ids ids = List.fold_left (fun m i -> m lor (1 lsl i)) 0 ids

let ids_of_mask n mask =
  List.init n Fun.id |> List.filter (fun i -> mask land (1 lsl i) <> 0)

let expected t (q : Api.query) answer =
  match (q, answer) with
  | Api.World (metric, _), World ids ->
      expected_world_dist t metric (mask_of_ids ids)
  | Api.Topk (k, metric, _), Topk tau -> expected_topk_dist t ~k metric tau
  | Api.Rank Api.Rank_footrule, Rank sigma -> expected_rank_footrule t sigma
  | Api.Rank Api.Rank_kendall, Rank sigma -> expected_rank_kendall t sigma
  | Api.Aggregate (probs, _), Counts c -> expected_aggregate probs c
  | Api.Cluster _, Clustering c -> expected_clustering t c
  | _ -> invalid_arg "Exact.expected: answer does not match the query family"

let nk t = Array.length t.keys

let solvable t (q : Api.query) =
  let worlds = num_worlds t in
  match q with
  | Api.World (_, Api.Mean) ->
      t.n <= 16 && (1 lsl t.n) * max 1 worlds <= ops_budget
  | Api.World (_, Api.Median) -> worlds * worlds <= ops_budget
  | Api.Topk (k, _, Api.Mean) ->
      let len = min k (nk t) in
      let cands = num_arrangements (nk t) len in
      cands <= 20_000 && cands * max 1 worlds * (len + 1) * (len + 1) <= ops_budget
  | Api.Topk (k, _, Api.Median) ->
      worlds * worlds * (k + 1) * (k + 1) <= ops_budget
  | Api.Rank _ -> nk t <= 8
  | Api.Cluster _ -> nk t <= 9
  | Api.Aggregate (probs, _) -> aggregate_solvable probs

let argmin eval = function
  | [] -> invalid_arg "Exact.solve: empty candidate space"
  | c0 :: rest ->
      List.fold_left
        (fun ((_, bd) as best) c ->
          let d = eval c in
          if d < bd then (c, d) else best)
        (c0, eval c0) rest

let solve t (q : Api.query) =
  if not (solvable t q) then
    invalid_arg "Exact.solve: instance exceeds the brute-force budget";
  match q with
  | Api.Aggregate (probs, flavor) ->
      let c, d = solve_aggregate probs flavor in
      (Counts c, d)
  | Api.World (metric, flavor) ->
      let candidates =
        match flavor with
        | Api.Mean -> List.init (1 lsl t.n) Fun.id
        | Api.Median -> Array.to_list t.worlds |> List.map (fun w -> w.mask)
      in
      let mask, d =
        argmin (expected_world_dist t metric) (List.sort_uniq compare candidates)
      in
      (World (ids_of_mask t.n mask), d)
  | Api.Topk (k, metric, flavor) ->
      let candidates =
        match flavor with
        | Api.Mean ->
            arrangements (Array.to_list t.keys) (min k (nk t))
            |> List.map Array.of_list
        | Api.Median -> dedup_arrays (Array.to_list (topk_lists t ~k))
      in
      let tau, d = argmin (expected_topk_dist t ~k metric) candidates in
      (Topk tau, d)
  | Api.Rank metric ->
      let eval =
        match metric with
        | Api.Rank_footrule -> expected_rank_footrule t
        | Api.Rank_kendall -> expected_rank_kendall t
      in
      let sigma, d =
        argmin eval (arrangements (Array.to_list t.keys) (nk t) |> List.map Array.of_list)
      in
      (Rank sigma, d)
  | Api.Cluster _ ->
      let c, d = argmin (expected_clustering t) (partitions (nk t)) in
      (Clustering c, d)
