(** Differential fuzz driver.

    Generates small random instances per consensus family and subjects each
    to four check layers:

    - {e config grid}: {!Api.run} under cache off/on and jobs 1/N must
      return structurally identical answers (the engine's determinism
      contract);
    - {e evaluators}: every closed-form expected distance an answer reports
      must match its possible-world enumeration twin
      ({!Api.enum_expected});
    - {e optimality}: the reported optimum must equal the brute-force
      oracle's ({!Exact.solve}) for exact algorithms, and stay within a
      factor-2 ratio bound for the heuristic paths (top-k Kendall mean,
      clustering) — the paper-level approximation guarantees;
    - {e metamorphic}: on every applicable rewrite ({!Metamorph.all}) of
      the instance, the optimal target value must be unchanged (checked
      through {!Api.run} for exact queries and through the oracle for
      heuristic ones).

    A failing case is greedily shrunk ({!Shrink.shrink}) and, when a corpus
    directory is configured, promoted to a regression file that
    {!replay} — wired into [dune runtest] — checks forever after.
    Everything is deterministic in the configured seed. *)

module Api = Consensus.Api
module Pool = Consensus_engine.Pool

(** {1 Families} *)

type family = World | Topk | Rank | Aggregate | Cluster

val all_families : family list
val family_name : family -> string
val family_of_string : string -> (family, string) result

(** {1 Case generation and checking} *)

val gen_case : Consensus_util.Prng.t -> family -> max_leaves:int -> Corpus.case
(** One random instance of the family, sized within the oracle's
    per-family budgets (leaf counts are clamped below [max_leaves] where a
    family's candidate space grows faster). *)

type verdict = {
  checks : int;  (** individual invariant checks performed *)
  failure : (string * string) option;  (** (check name, detail) *)
}

val check_case : pool:Pool.t -> pool1:Pool.t -> Corpus.case -> verdict
(** Run every applicable check layer.  Deterministic in the case content
    (rewrite randomness is seeded from the serialized case).  Exceptions
    escaping {!Api.run} are themselves reported as a failing check
    ([exception]).  [pool] carries the multi-job grid leg, [pool1] must be
    a [jobs = 1] pool. *)

(** {1 Campaigns} *)

type config = {
  seed : int;
  iters : int;  (** cases per family *)
  max_leaves : int;
  families : family list;
  corpus_dir : string option;  (** promote shrunk failures here *)
}

val default_config : config
(** seed 0, 100 iterations, 12 leaves, every family, no promotion. *)

type discrepancy = {
  case : Corpus.case;
  check : string;
  detail : string;
  shrunk : Corpus.case;
  shrink_steps : int;
  path : string option;  (** corpus file if promoted *)
}

type report = {
  cases : int;
  total_checks : int;
  discrepancies : discrepancy list;
}

val run : ?pool:Pool.t -> ?pool1:Pool.t -> config -> report
(** Fuzz campaign over the configured families.  Pools are created (jobs
    auto / jobs 1) unless supplied.  Obs counters [fuzz_cases_total],
    [fuzz_checks_total], [fuzz_discrepancies_total] and
    [fuzz_shrink_steps_total] record progress when tracing is enabled. *)

val replay : ?pool:Pool.t -> ?pool1:Pool.t -> dir:string -> unit -> (string * string * string) list
(** Re-check every corpus case of a directory; returns the failures as
    [(file, check, detail)].  Empty list = corpus clean. *)
