open Consensus_anxor
module Api = Consensus.Api

let drop_leaf tree i =
  Tree.indexed tree
  |> Tree.filter_leaves (fun (j, _) -> j <> i)
  |> Tree.map snd

let valid_tree_case query db =
  Db.num_alts db >= 1 && Metamorph.compatible db query

let rebuild query tree =
  match Db.create tree with
  | db -> if valid_tree_case query db then Some Corpus.{ query; db } else None
  | exception Invalid_argument _ -> None

let drop_row probs i =
  Array.to_list probs
  |> List.filteri (fun j _ -> j <> i)
  |> Array.of_list

let drop_col probs i =
  Array.map
    (fun row -> Array.to_list row |> List.filteri (fun j _ -> j <> i) |> Array.of_list)
    probs

let candidates (case : Corpus.case) =
  match case.query with
  | Api.Aggregate (probs, flavor) ->
      let n = Array.length probs in
      let m = if n = 0 then 0 else Array.length probs.(0) in
      let rows =
        if n <= 1 then []
        else
          List.init n (fun i ->
              Corpus.
                { query = Api.Aggregate (drop_row probs i, flavor); db = case.db })
      in
      let cols =
        if m <= 1 then []
        else
          List.init m (fun i ->
              Corpus.
                { query = Api.Aggregate (drop_col probs i, flavor); db = case.db })
      in
      rows @ cols
  | query ->
      let tree = Db.tree case.db in
      let n = Tree.num_leaves tree in
      let leaf_drops =
        List.init n (fun i -> rebuild query (drop_leaf tree i))
        |> List.filter_map Fun.id
      in
      let simplified =
        let t' = Transform.simplify tree in
        if t' = tree then [] else Option.to_list (rebuild query t')
      in
      let k_drops =
        match query with
        | Api.Topk (k, metric, flavor) when k > 1 ->
            [ Corpus.{ query = Api.Topk (k - 1, metric, flavor); db = case.db } ]
        | _ -> []
      in
      leaf_drops @ simplified @ k_drops

let shrink ?(max_steps = 200) still_fails case =
  let rec go case steps =
    if steps >= max_steps then (case, steps)
    else
      match List.find_opt still_fails (candidates case) with
      | Some smaller -> go smaller (steps + 1)
      | None -> (case, steps)
  in
  go case 0
