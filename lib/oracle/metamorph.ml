open Consensus_anxor
module Api = Consensus.Api
module Prng = Consensus_util.Prng

(* Which distribution level a rewrite preserves.  [Leaf_set] rewrites keep
   the distribution over leaf index sets (world answers included);
   [Payload] rewrites only keep the distribution over payload multisets
   (split/merge twins), which duplicates scores — valid for clustering,
   whose answers depend on values alone. *)
type level = Leaf_set | Payload

type rewrite = {
  name : string;
  level : level;
  rw : Prng.t -> Db.alt Tree.t -> Db.alt Tree.t;
}

let name r = r.name

let relabel_keys rng tree =
  let keys =
    Tree.leaves tree
    |> List.map (fun (a : Db.alt) -> a.key)
    |> List.sort_uniq compare |> Array.of_list
  in
  let image = Array.copy keys in
  Prng.shuffle rng image;
  let map = Hashtbl.create (Array.length keys) in
  Array.iteri (fun i k -> Hashtbl.replace map k image.(i)) keys;
  Tree.map (fun (a : Db.alt) -> { a with key = Hashtbl.find map a.key }) tree

let all =
  [
    { name = "relabel-keys"; level = Leaf_set; rw = relabel_keys };
    { name = "shuffle-siblings"; level = Leaf_set; rw = Transform.shuffle_siblings };
    { name = "simplify"; level = Leaf_set; rw = (fun _ t -> Transform.simplify t) };
    {
      name = "pad-absent";
      level = Leaf_set;
      rw = (fun rng t -> Transform.pad_absent ~copies:(1 + Prng.int rng 3) t);
    };
    { name = "split-leaf"; level = Payload; rw = Transform.split_leaf };
    { name = "merge-twins"; level = Payload; rw = (fun _ t -> Transform.merge_twin_edges t) };
  ]

let supported (q : Api.query) =
  match q with
  | Api.Aggregate _ -> false
  | Api.Topk (_, (Api.Intersection | Api.Footrule | Api.Kendall), Api.Median) ->
      false
  | _ -> true

let compatible db (q : Api.query) =
  match q with
  | Api.World (Api.Set_jaccard, Api.Mean) -> Db.is_independent db
  | Api.World (Api.Set_jaccard, Api.Median) ->
      Db.is_independent db || Db.is_bid db
  | Api.World (Api.Set_sym_diff, _) -> true
  | Api.Topk (k, _, _) -> k >= 1 && Db.scores_distinct db
  | Api.Rank _ -> Db.scores_distinct db
  | Api.Cluster _ -> true
  | Api.Aggregate _ -> false

let level_ok level (q : Api.query) =
  match level with
  | Leaf_set -> true
  | Payload -> ( match q with Api.Cluster _ -> true | _ -> false)

let apply r rng db q =
  if not (supported q && level_ok r.level q && compatible db q) then None
  else
    match Db.create (r.rw rng (Db.tree db)) with
    | db' -> if compatible db' q then Some db' else None
    | exception Invalid_argument _ -> None
