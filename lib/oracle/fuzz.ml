module Api = Consensus.Api
module Pool = Consensus_engine.Pool
module Prng = Consensus_util.Prng
module Gen = Consensus_workload.Gen
module Obs = Consensus_obs.Obs
module Db = Consensus_anxor.Db
module Tree = Consensus_anxor.Tree
module Genfunc = Consensus_anxor.Genfunc
module Marginals = Consensus_anxor.Marginals
module Poly1 = Consensus_poly.Poly1

(* ---------- families ---------- *)

type family = World | Topk | Rank | Aggregate | Cluster

let all_families = [ World; Topk; Rank; Aggregate; Cluster ]

let family_name = function
  | World -> "world"
  | Topk -> "topk"
  | Rank -> "rank"
  | Aggregate -> "aggregate"
  | Cluster -> "cluster"

let family_of_string = function
  | "world" -> Ok World
  | "topk" -> Ok Topk
  | "rank" -> Ok Rank
  | "aggregate" -> Ok Aggregate
  | "cluster" -> Ok Cluster
  | s ->
      Error
        (Printf.sprintf
           "unknown family %S (expected world|topk|rank|aggregate|cluster)" s)

(* ---------- observability ---------- *)

let cases_total = Obs.Counter.make ~help:"fuzz cases generated" "fuzz_cases_total"
let checks_total = Obs.Counter.make ~help:"fuzz invariant checks" "fuzz_checks_total"

let discrepancies_total =
  Obs.Counter.make ~help:"fuzz discrepancies found" "fuzz_discrepancies_total"

let shrink_steps_total =
  Obs.Counter.make ~help:"accepted shrink steps" "fuzz_shrink_steps_total"

(* ---------- case generation ---------- *)

(* Per-family size clamps: each family's oracle cost grows at a different
   rate (2^n world candidates, arrangements for top-k, n! permutations,
   Bell numbers for clusterings), so [max_leaves] is capped where needed to
   keep [Exact.solve] affordable on most generated cases. *)
let gen_case rng family ~max_leaves =
  if max_leaves <= 0 then invalid_arg "Fuzz.gen_case: max_leaves must be positive";
  match family with
  | World ->
      let db = Gen.small_db rng ~max_leaves:(min max_leaves 10) in
      let flavor = if Prng.bool rng then Api.Mean else Api.Median in
      let metric = if Prng.bool rng then Api.Set_sym_diff else Api.Set_jaccard in
      let q = Api.World (metric, flavor) in
      let q =
        if Metamorph.compatible db q then q else Api.World (Api.Set_sym_diff, flavor)
      in
      { Corpus.query = q; db }
  | Topk ->
      let db = Gen.small_db rng ~max_leaves:(min max_leaves 8) in
      let k = 1 + Prng.int rng 3 in
      let metric =
        Prng.choose rng [| Api.Sym_diff; Api.Intersection; Api.Footrule; Api.Kendall |]
      in
      let flavor =
        if metric = Api.Sym_diff && Prng.bool rng then Api.Median else Api.Mean
      in
      { Corpus.query = Api.Topk (k, metric, flavor); db }
  | Rank ->
      let db = Gen.small_db rng ~max_leaves:(min max_leaves 8) in
      let metric = if Prng.bool rng then Api.Rank_footrule else Api.Rank_kendall in
      { Corpus.query = Api.Rank metric; db }
  | Aggregate ->
      let probs = Gen.small_matrix rng ~max_tuples:6 ~max_groups:4 in
      let flavor = if Prng.bool rng then Api.Mean else Api.Median in
      { Corpus.query = Api.Aggregate (probs, flavor); db = Corpus.placeholder_db }
  | Cluster ->
      let max_keys = max 1 (min 7 max_leaves) in
      let db =
        Gen.small_clustering_db rng ~max_keys
          ~max_leaves:(max max_keys (min max_leaves 14))
      in
      let trials = 1 + Prng.int rng 4 in
      let samples = if Prng.bool rng then Some (1 + Prng.int rng 8) else None in
      { Corpus.query = Api.Cluster { trials; samples }; db }

(* ---------- checking ---------- *)

type verdict = { checks : int; failure : (string * string) option }

exception Fail of string * string

(* Closed forms and their enumeration twins sum the same terms in different
   orders; exact answers on rewritten trees likewise.  Equality up to a
   relative 1e-6 keeps genuine off-by-ones visible (they shift whole units
   of distance) while absorbing float-association noise. *)
let approx_eq a b =
  Float.abs (a -. b)
  <= 1e-6 *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

(* The two heuristic paths (top-k Kendall mean, clustering) carry
   constant-factor guarantees, not optimality (§5.5, §6.2); the fuzz bound
   mirrors the documented factor 2. *)
let heuristic_ratio = 2.

let run_api ~cache ~pool (case : Corpus.case) =
  Api.Cache.set_enabled cache;
  if cache then Api.Cache.clear ();
  Fun.protect
    ~finally:(fun () -> Api.Cache.set_enabled false)
    (fun () -> Api.run ~pool ~rng:(Prng.create ~seed:42 ()) case.db case.query)

let target_value query answer =
  List.assoc (Api.target_metric query) (Api.answer_expected answer)

let check_case ~pool ~pool1 (case : Corpus.case) =
  let checks = ref 0 in
  let ensure name detail cond =
    incr checks;
    Obs.Counter.incr checks_total;
    if not cond then raise (Fail (name, detail ()))
  in
  let q = case.Corpus.query and db = case.Corpus.db in
  let failure =
    try
      (* 1. config grid: cache off/on x jobs N/1 must agree exactly. *)
      let a = run_api ~cache:false ~pool case in
      let a_cache = run_api ~cache:true ~pool case in
      ensure "config-grid"
        (fun () -> "answers differ between cache off and cache on")
        (a_cache = a);
      let a_jobs1 = run_api ~cache:false ~pool:pool1 case in
      ensure "config-grid"
        (fun () -> "answers differ between jobs=N and jobs=1")
        (a_jobs1 = a);
      (* 2. evaluators: closed forms vs possible-world enumeration. *)
      let reported = Api.answer_expected a in
      let enum = Api.enum_expected ~pool db q a in
      List.iter2
        (fun (name, v) (name', v') ->
          assert (name = name');
          ensure "evaluator"
            (fun () ->
              Printf.sprintf "%s: closed form %.12g vs enumeration %.12g" name v v')
            (approx_eq v v'))
        reported enum;
      let target = target_value q a in
      (* 3. oracle: expected value and optimality. *)
      let opt =
        match q with
        | Api.Aggregate (probs, flavor) ->
            if not (Exact.aggregate_solvable probs) then None
            else begin
              let counts =
                match Exact.of_api a with
                | Exact.Counts c -> c
                | _ -> assert false
              in
              let oracle_v = Exact.expected_aggregate probs counts in
              ensure "oracle-expected"
                (fun () ->
                  Printf.sprintf "reported %.12g vs oracle %.12g" target oracle_v)
                (approx_eq target oracle_v);
              let _, opt = Exact.solve_aggregate probs flavor in
              ensure "oracle-optimal"
                (fun () ->
                  Printf.sprintf "reported %.12g vs brute-force optimum %.12g"
                    target opt)
                (approx_eq target opt);
              Some opt
            end
        | _ ->
            let t = Exact.prepare db in
            ensure "oracle-worlds"
              (fun () ->
                Printf.sprintf "world probabilities sum to %.12g"
                  (Exact.total_probability t))
              (approx_eq (Exact.total_probability t) 1.);
            let oracle_v = Exact.expected t q (Exact.of_api a) in
            ensure "oracle-expected"
              (fun () ->
                Printf.sprintf "reported %.12g vs oracle %.12g" target oracle_v)
              (approx_eq target oracle_v);
            if not (Exact.solvable t q) then None
            else begin
              let _, opt = Exact.solve t q in
              if Api.exact db q then
                ensure "oracle-optimal"
                  (fun () ->
                    Printf.sprintf "reported %.12g vs brute-force optimum %.12g"
                      target opt)
                  (approx_eq target opt)
              else begin
                ensure "oracle-lower-bound"
                  (fun () ->
                    Printf.sprintf "reported %.12g below brute-force optimum %.12g"
                      target opt)
                  (target >= opt -. 1e-6);
                ensure "heuristic-ratio"
                  (fun () ->
                    Printf.sprintf "reported %.12g exceeds %g x optimum %.12g"
                      target heuristic_ratio opt)
                  (target <= (heuristic_ratio *. opt) +. 1e-6)
              end;
              Some opt
            end
      in
      (* 4. metamorphic rewrites: the optimal target value is invariant. *)
      if Metamorph.supported q then begin
        let seed = Hashtbl.hash (Corpus.to_string case) land 0xFFFFFF in
        List.iteri
          (fun i rewrite ->
            let rng = Prng.create ~seed:(seed + i) () in
            match Metamorph.apply rewrite rng db q with
            | None -> ()
            | Some db' ->
                if Api.exact db q && Api.exact db' q then begin
                  let a' = run_api ~cache:false ~pool { case with Corpus.db = db' } in
                  let target' = target_value q a' in
                  ensure
                    ("metamorphic:" ^ Metamorph.name rewrite)
                    (fun () ->
                      Printf.sprintf "optimum %.12g became %.12g" target target')
                    (approx_eq target target')
                end
                else
                  Option.iter
                    (fun opt ->
                      let t' = Exact.prepare db' in
                      if Exact.solvable t' q then begin
                        let _, opt' = Exact.solve t' q in
                        ensure
                          ("metamorphic:" ^ Metamorph.name rewrite)
                          (fun () ->
                            Printf.sprintf "oracle optimum %.12g became %.12g" opt
                              opt')
                          (approx_eq opt opt')
                      end)
                    opt)
          Metamorph.all
      end;
      (* 5. representation parity: the flat-arena kernels against their
         pointer-tree predecessors, on this case's database.  The arena
         evaluators mirror the tree fold order op-for-op, so agreement is
         expected to the last bit; the tolerant comparison is the referee
         for the one sweep ([rank_table_fast]) whose fallback recomputation
         may re-associate a product. *)
      (match q with
      | Api.Aggregate _ -> () (* matrix input; [db] is a placeholder *)
      | _ ->
          let tree = Db.tree db in
          ensure "parity:size-distribution"
            (fun () -> "arena and tree size distributions differ")
            (Poly1.equal ~eps:1e-12
               (Marginals.size_distribution db)
               (Genfunc.size_distribution tree));
          List.iteri
            (fun i (_, m) ->
              ensure "parity:marginals"
                (fun () ->
                  Printf.sprintf "leaf %d: arena marginal %.17g vs tree %.17g" i
                    (Db.marginal db i) m)
                (approx_eq (Db.marginal db i) m))
            (Tree.marginals tree);
          let n = Db.num_alts db in
          let k = min n 5 in
          for l = 0 to n - 1 do
            let ra = Marginals.rank_dist_alt db l ~k in
            let rt = Marginals.rank_dist_alt_tree db l ~k in
            for j = 0 to k - 1 do
              ensure "parity:rank-dist-alt"
                (fun () ->
                  Printf.sprintf "leaf %d rank %d: arena %.17g vs tree %.17g" l
                    (j + 1) ra.(j) rt.(j))
                (approx_eq ra.(j) rt.(j))
            done
          done;
          if Db.xor_blocks db <> None && Db.scores_distinct db then begin
            let fast = Marginals.rank_table_fast db ~k in
            let slow = Marginals.rank_table_fast_tree db ~k in
            List.iter2
              (fun (key, ra) (key', rt) ->
                assert (key = key');
                Array.iteri
                  (fun j v ->
                    ensure "parity:rank-table-fast"
                      (fun () ->
                        Printf.sprintf
                          "key %d rank %d: arena sweep %.12g vs tree sweep %.12g"
                          key (j + 1) v rt.(j))
                      (approx_eq v rt.(j)))
                  ra)
              fast slow
          end;
          ensure "parity:round-trip-digest"
            (fun () -> "rebuilding the arena from the tree changes the digest")
            (Db.digest (Db.create ~check:false tree) = Db.digest db));
      None
    with
    | Fail (name, detail) -> Some (name, detail)
    | e -> Some ("exception", Printexc.to_string e)
  in
  { checks = !checks; failure }

(* ---------- campaigns ---------- *)

type config = {
  seed : int;
  iters : int;
  max_leaves : int;
  families : family list;
  corpus_dir : string option;
}

let default_config =
  { seed = 0; iters = 100; max_leaves = 12; families = all_families; corpus_dir = None }

type discrepancy = {
  case : Corpus.case;
  check : string;
  detail : string;
  shrunk : Corpus.case;
  shrink_steps : int;
  path : string option;
}

type report = { cases : int; total_checks : int; discrepancies : discrepancy list }

let run ?pool ?pool1 config =
  if config.iters < 0 then invalid_arg "Fuzz.run: negative iteration count";
  let owned = ref [] in
  let get opt jobs =
    match opt with
    | Some p -> p
    | None ->
        let p = Pool.create ~jobs () in
        owned := p :: !owned;
        p
  in
  let pool = get pool 0 in
  let pool1 = get pool1 1 in
  Fun.protect ~finally:(fun () -> List.iter Pool.shutdown !owned) @@ fun () ->
  let rng = Prng.create ~seed:config.seed () in
  let cases = ref 0 and total_checks = ref 0 and discrepancies = ref [] in
  List.iter
    (fun family ->
      let frng = Prng.split rng in
      for _ = 1 to config.iters do
        let case = gen_case frng family ~max_leaves:config.max_leaves in
        incr cases;
        Obs.Counter.incr cases_total;
        let { checks; failure } = check_case ~pool ~pool1 case in
        total_checks := !total_checks + checks;
        match failure with
        | None -> ()
        | Some (check, detail) ->
            Obs.Counter.incr discrepancies_total;
            let still_fails c = (check_case ~pool ~pool1 c).failure <> None in
            let shrunk, shrink_steps = Shrink.shrink still_fails case in
            Obs.Counter.add shrink_steps_total shrink_steps;
            let path =
              Option.map (fun dir -> Corpus.save ~dir shrunk) config.corpus_dir
            in
            discrepancies :=
              { case; check; detail; shrunk; shrink_steps; path } :: !discrepancies
      done)
    config.families;
  { cases = !cases; total_checks = !total_checks; discrepancies = List.rev !discrepancies }

let replay ?pool ?pool1 ~dir () =
  let owned = ref [] in
  let get opt jobs =
    match opt with
    | Some p -> p
    | None ->
        let p = Pool.create ~jobs () in
        owned := p :: !owned;
        p
  in
  let pool = get pool 0 in
  let pool1 = get pool1 1 in
  Fun.protect ~finally:(fun () -> List.iter Pool.shutdown !owned) @@ fun () ->
  Corpus.load_dir dir
  |> List.filter_map (fun (file, case) ->
         match (check_case ~pool ~pool1 case).failure with
         | None -> None
         | Some (check, detail) -> Some (file, check, detail))
