(** Regression corpus: fuzz cases on disk.

    Every discrepancy the fuzz driver finds is shrunk and promoted into a
    corpus directory; [dune runtest] replays the checked-in corpus so a
    fixed bug stays fixed.  A case file is line-oriented:

    {v
    ; free-form comment lines
    query topk k=2 metric=symdiff flavor=mean
    (and (xor (0.5 (leaf 1 2.))) (xor (0.25 (leaf 2 1.))))
    v}

    The [query] line uses {!Consensus.Query_text} syntax; the remainder is
    the and/xor tree ({!Consensus_anxor.Sexp_io}) — or, for aggregate
    queries ([query aggregate flavor=...]), whitespace-separated matrix
    rows, since the matrix travels inside the query itself. *)

open Consensus_anxor
module Api = Consensus.Api

type case = { query : Api.query; db : Db.t }
(** One replayable instance.  For aggregate queries [db] is
    {!placeholder_db} — {!Api.run} never consults it. *)

val placeholder_db : Db.t
(** One-leaf stand-in database carried by aggregate cases. *)

val to_string : case -> string
val of_string : string -> (case, string) result
(** Inverses: [of_string (to_string c)] reproduces [c] (the tree bit-for
    -bit, queries structurally). *)

val file_name : case -> string
(** Deterministic name derived from the serialized content's digest
    ([case-<hex>.txt]) — re-promoting the same case is idempotent and
    corpus files carry no timestamps. *)

val save : dir:string -> case -> string
(** Serialize into [dir] (created if missing) under {!file_name}; returns
    the path written. *)

val load : string -> (case, string) result
(** Read one case file; errors carry the path. *)

val load_dir : string -> (string * case) list
(** All [case-*.txt] files of a directory in name order, parsed; raises
    [Failure] on the first malformed file (a corrupted corpus should fail
    loudly, not shrink silently).  An absent directory is an empty
    corpus. *)
