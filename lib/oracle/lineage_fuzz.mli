(** Differential fuzzing of the lineage-inference stack.

    Every generated case ({!Consensus_workload.Lineage_gen} plan shapes)
    replays [Inference.probability] across its routes — read-once fast
    path, Shannon with and without component decomposition — and against
    the brute-force possible-worlds oracle (on ≤ 18-variable instances)
    and a seeded Monte-Carlo estimate, plus metamorphic scrambles that
    must preserve both the read-once verdict and the probability.
    Failures shrink greedily and promote into the regression corpus as
    [lcase-*.txt] files, replayed forever after by the [@fuzz] alias. *)

open Consensus_pdb

type case = { shape : string; reg : Lineage.Registry.r; lineage : Lineage.t }

val of_gen : Consensus_workload.Lineage_gen.case -> case

(** {1 Serialization} ([lcase-*.txt], sharing the core corpus directory) *)

val to_string : case -> string
val of_string : string -> (case, string) result
val file_name : case -> string
val save : dir:string -> case -> string
val load : string -> (case, string) result

val load_dir : string -> (string * case) list
(** All [lcase-*.txt] files of a directory in name order; raises [Failure]
    on the first malformed file.  An absent directory is an empty corpus. *)

(** {1 Checking} *)

val brute_var_limit : int
(** Variable-count gate for the possible-worlds and pure-Shannon layers
    (18). *)

val brute : Lineage.Registry.r -> Lineage.t -> float
(** Possible-worlds enumeration (exponential; respects BID blocks). *)

type verdict = {
  checks : int;
  failure : (string * string) option;  (** (check name, detail) *)
}

val check_case :
  ?readonce:bool -> ?expect:Consensus_workload.Lineage_gen.expect -> case -> verdict
(** Run every applicable layer.  [readonce] (default true) gates the
    fast-path comparisons — the CLI ablation knob; [expect] (default
    [Unknown]) adds the generator's theory check and is only passed for
    freshly generated cases, never replays.  Deterministic in the case
    content. *)

val shrink : ?max_steps:int -> (case -> bool) -> case -> case * int
(** Greedy structural shrink (child promotion, child drops, constant
    substitution) while the predicate keeps failing. *)

(** {1 Campaigns} *)

type config = {
  seed : int;
  iters : int;
  readonce : bool;  (** exercise the fast-path layers (ablation knob) *)
  corpus_dir : string option;
}

val default_config : config
(** seed 0, 500 iterations, readonce on, no promotion. *)

type discrepancy = {
  case : case;
  check : string;
  detail : string;
  shrunk : case;
  shrink_steps : int;
  path : string option;
}

type report = { cases : int; total_checks : int; discrepancies : discrepancy list }

val run : config -> report
(** Obs counters [lineage_fuzz_cases_total], [lineage_fuzz_checks_total]
    and [lineage_fuzz_discrepancies_total] record progress when tracing is
    enabled. *)

val replay : dir:string -> unit -> (string * string * string) list
(** Re-check every [lcase-*.txt] case of a directory; returns failures as
    [(file, check, detail)]. *)
