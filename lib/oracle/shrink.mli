(** Greedy shrinking of failing fuzz cases.

    Given a case and a predicate that re-checks it ("does this instance
    still expose the discrepancy?"), repeatedly try the smallest local
    reductions — drop one leaf (xor mass becomes residual, preserving the
    remaining leaves' distribution), normalize the tree, lower [k], drop a
    matrix row or group — and keep the first reduction that still fails,
    until a fixpoint.  The predicate must be exception-safe: a reduction
    that makes the instance degenerate should report [false], not raise. *)

val shrink :
  ?max_steps:int ->
  (Corpus.case -> bool) ->
  Corpus.case ->
  Corpus.case * int
(** [shrink still_fails case]: the reduced case and the number of accepted
    shrink steps.  [case] itself is returned (0 steps) when no reduction
    reproduces the failure.  [max_steps] (default 200) bounds the greedy
    descent. *)

val candidates : Corpus.case -> Corpus.case list
(** The one-step reductions of a case, largest reduction first — exposed
    for the test suite. *)
