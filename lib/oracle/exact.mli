(** Exact brute-force oracle: consensus answers straight from Definition 1.

    Every optimized algorithm in this repository computes
    [argmin_c E d(c, answer(pw))] by some closed form; this module computes
    the same argmin by enumerating the possible worlds of the and/xor tree
    ({!Consensus_anxor.Worlds}), evaluating the distance metric against
    every world, and searching the candidate space exhaustively.  It shares
    {e no} probability computation with the optimized code paths — only the
    combinatorial distance definitions — so a disagreement implicates one
    side or the other, not a common substrate.

    Exponential everywhere by design: intended for instances up to ~18
    leaves (expectations) and smaller candidate spaces (argmins); the
    size guards raise [Invalid_argument] beyond the supported budget. *)

open Consensus_anxor
module Api = Consensus.Api

type t
(** A prepared instance: the merged possible worlds of one database, with
    per-world projections (leaf masks, top-k answers, rank positions,
    clusterings) computed lazily per family. *)

val prepare : ?max_leaves:int -> Db.t -> t
(** Enumerate and merge the possible worlds.  [max_leaves] (default 18)
    bounds the instance; raises [Invalid_argument] beyond it. *)

val db : t -> Db.t

val num_worlds : t -> int
(** Distinct possible leaf sets with nonzero probability. *)

val total_probability : t -> float
(** Σ of world probabilities — 1 up to float tolerance (asserted by the
    oracle's own test suite, not here). *)

(** {1 Answers} *)

(** Oracle-side answer representation: the payload of {!Api.answer} without
    the [expected] lists. *)
type answer =
  | World of int list  (** sorted leaf indices *)
  | Topk of int array  (** ordered keys *)
  | Rank of int array  (** permutation of all keys *)
  | Counts of float array  (** group-by count vector *)
  | Clustering of int array  (** labels by key position *)

val of_api : Api.answer -> answer
(** Project an optimized answer (drop its [expected] list). *)

val expected : t -> Api.query -> answer -> float
(** Expected distance of a candidate answer under the query's target
    metric, by enumeration over the prepared worlds. *)

val solve : t -> Api.query -> answer * float
(** Exhaustive argmin: one optimal answer and the optimal expected
    distance.  Mean flavors search the full answer space (all leaf subsets,
    all ordered k-tuples of keys, all permutations, all set partitions);
    median flavors search the possible answers only.  Raises
    [Invalid_argument] when the candidate space exceeds the brute-force
    budget ({!solvable} is the preflight check). *)

val solvable : t -> Api.query -> bool
(** Would {!solve} accept the instance?  (Candidate-space size guard.) *)

(** {1 Aggregates (§6.1)}

    Aggregate instances are matrices, not trees; they bypass {!prepare}. *)

val solve_aggregate : float array array -> Api.flavor -> float array * float
(** Optimal count vector and its expected squared distance, by enumerating
    all [mⁿ] tuple→group assignments.  Raises [Invalid_argument] beyond
    ~200k assignments. *)

val expected_aggregate : float array array -> float array -> float
(** Expected squared distance of a candidate count vector, likewise. *)

val aggregate_solvable : float array array -> bool
