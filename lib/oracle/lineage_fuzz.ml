(* Differential fuzzing of the lineage-inference stack.

   Each case is a (registry, formula) pair from the plan-shaped generator
   [Consensus_workload.Lineage_gen].  Layers, per case:

   1. route agreement: [Inference.probability ~readonce:true] vs
      [~readonce:false] — the read-once fast path against Shannon
      expansion, the PR's core differential;
   2. pure Shannon: [~decompose:false ~readonce:false] (no component
      factorization at all) on instances small enough to afford it;
   3. brute force: the possible-worlds enumeration on <= 18-variable
      instances — ground truth;
   4. Monte Carlo: [probability_mc] within a 5-sigma band (the sampler
      seed derives from the serialized case, so replays are exact);
   5. metamorphic scrambles: equivalence-preserving rewrites (child
      shuffles, idempotent duplication, double negation, De Morgan) must
      preserve both the read-once verdict and the probability;
   6. on freshly generated cases only: the generator's theory expectation
      (hierarchical shapes detected, induced-P4 shapes rejected).

   Failures shrink greedily (child promotion/drops, constant
   substitution) and promote into the shared corpus directory as
   [lcase-*.txt] files, replayed by the same [@fuzz] alias as the core
   corpus. *)

module Prng = Consensus_util.Prng
module Fcmp = Consensus_util.Fcmp
module Obs = Consensus_obs.Obs
module Lineage_gen = Consensus_workload.Lineage_gen
open Consensus_pdb

type case = { shape : string; reg : Lineage.Registry.r; lineage : Lineage.t }

let of_gen (c : Lineage_gen.case) =
  { shape = c.Lineage_gen.shape; reg = c.Lineage_gen.reg; lineage = c.Lineage_gen.lineage }

(* ---------- observability ---------- *)

let cases_total =
  Obs.Counter.make ~help:"lineage fuzz cases generated" "lineage_fuzz_cases_total"

let checks_total =
  Obs.Counter.make ~help:"lineage fuzz invariant checks" "lineage_fuzz_checks_total"

let discrepancies_total =
  Obs.Counter.make ~help:"lineage fuzz discrepancies found"
    "lineage_fuzz_discrepancies_total"

(* ---------- serialization ----------

   Line-oriented, like the core corpus:

   {v
   lineage shape=product
   var 0.55
   block 0.1 0.2
   formula (or (and x0 x1) (not x3))
   v}

   Registry lines appear in variable order ([fresh_block] allocates
   consecutive ids, so blocks serialize as one line); the formula grammar
   is [t | f | xN | (not F) | (and F ...) | (or F ...)]. *)

let float_repr x =
  let s = Printf.sprintf "%.12g" x in
  if float_of_string s = x then s else Printf.sprintf "%.17g" x

let formula_to_string f =
  let buf = Buffer.create 128 in
  let rec go = function
    | Lineage.True -> Buffer.add_string buf "t"
    | Lineage.False -> Buffer.add_string buf "f"
    | Lineage.Var v -> Buffer.add_string buf (Printf.sprintf "x%d" v)
    | Lineage.Not g ->
        Buffer.add_string buf "(not ";
        go g;
        Buffer.add_char buf ')'
    | Lineage.And fs -> conn "and" fs
    | Lineage.Or fs -> conn "or" fs
  and conn name fs =
    Buffer.add_char buf '(';
    Buffer.add_string buf name;
    List.iter
      (fun g ->
        Buffer.add_char buf ' ';
        go g)
      fs;
    Buffer.add_char buf ')'
  in
  go f;
  Buffer.contents buf

let formula_of_string s =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  while !i < n do
    match s.[!i] with
    | '(' | ')' ->
        toks := String.make 1 s.[!i] :: !toks;
        incr i
    | ' ' | '\t' -> incr i
    | _ ->
        let j = ref !i in
        while
          !j < n && (match s.[!j] with '(' | ')' | ' ' | '\t' -> false | _ -> true)
        do
          incr j
        done;
        toks := String.sub s !i (!j - !i) :: !toks;
        i := !j
  done;
  let toks = ref (List.rev !toks) in
  let next () =
    match !toks with
    | [] -> failwith "unexpected end of formula"
    | t :: rest ->
        toks := rest;
        t
  in
  let atom = function
    | "t" -> Lineage.True
    | "f" -> Lineage.False
    | t
      when String.length t > 1
           && t.[0] = 'x'
           && String.for_all (fun c -> c >= '0' && c <= '9')
                (String.sub t 1 (String.length t - 1)) ->
        Lineage.Var (int_of_string (String.sub t 1 (String.length t - 1)))
    | t -> failwith (Printf.sprintf "bad formula token %S" t)
  in
  let rec parse () =
    match next () with
    | "(" -> (
        let op = next () in
        let args = ref [] in
        let rec loop () =
          match !toks with
          | ")" :: rest ->
              toks := rest;
              List.rev !args
          | _ ->
              args := parse () :: !args;
              loop ()
        in
        let args = loop () in
        match op with
        | "not" -> (
            match args with
            | [ g ] -> Lineage.Not g
            | _ -> failwith "not takes one argument")
        | "and" -> Lineage.And args
        | "or" -> Lineage.Or args
        | op -> failwith (Printf.sprintf "bad connective %S" op))
    | ")" -> failwith "unexpected )"
    | t -> atom t
  in
  match parse () with
  | f -> if !toks = [] then Ok f else Error "trailing tokens after formula"
  | exception Failure e -> Error e

let to_string { shape; reg; lineage } =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "lineage shape=%s\n" shape);
  let n = Lineage.Registry.num_vars reg in
  let v = ref 0 in
  while !v < n do
    (match Lineage.Registry.block_of reg !v with
    | None ->
        Buffer.add_string buf
          (Printf.sprintf "var %s\n" (float_repr (Lineage.Registry.prob reg !v)));
        incr v
    | Some b ->
        let members = Lineage.Registry.block_members reg b in
        Buffer.add_string buf "block";
        List.iter
          (fun w ->
            Buffer.add_string buf
              (Printf.sprintf " %s" (float_repr (Lineage.Registry.prob reg w))))
          members;
        Buffer.add_char buf '\n';
        v := !v + List.length members);
    ()
  done;
  Buffer.add_string buf (Printf.sprintf "formula %s\n" (formula_to_string lineage));
  Buffer.contents buf

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> ';' && l.[0] <> '#')
  in
  let parse_floats rest =
    try Ok (List.map float_of_string (String.split_on_char ' ' (String.trim rest)))
    with Failure _ -> Error "bad probability"
  in
  match lines with
  | [] -> Error "empty case"
  | header :: rest -> (
      let shape =
        if header = "lineage" then Ok "unknown"
        else
          match String.index_opt header ' ' with
          | Some i when String.sub header 0 i = "lineage" ->
              let spec = String.trim (String.sub header (i + 1) (String.length header - i - 1)) in
              if String.length spec > 6 && String.sub spec 0 6 = "shape=" then
                Ok (String.sub spec 6 (String.length spec - 6))
              else Error (Printf.sprintf "bad lineage header %S" header)
          | _ -> Error "expected a 'lineage ...' first line"
      in
      match shape with
      | Error e -> Error e
      | Ok shape -> (
          let reg = Lineage.Registry.create () in
          let rec load = function
            | [] -> Error "missing 'formula' line"
            | line :: rest -> (
                match String.index_opt line ' ' with
                | None -> Error (Printf.sprintf "bad case line %S" line)
                | Some i -> (
                    let kind = String.sub line 0 i in
                    let payload =
                      String.sub line (i + 1) (String.length line - i - 1)
                    in
                    match kind with
                    | "var" -> (
                        match parse_floats payload with
                        | Ok [ p ] ->
                            ignore (Lineage.Registry.fresh reg p);
                            load rest
                        | Ok _ -> Error "var line takes one probability"
                        | Error e -> Error e)
                    | "block" -> (
                        match parse_floats payload with
                        | Ok ps when ps <> [] ->
                            ignore (Lineage.Registry.fresh_block reg ps);
                            load rest
                        | Ok _ -> Error "empty block line"
                        | Error e -> Error e)
                    | "formula" ->
                        if rest <> [] then Error "content after formula line"
                        else
                          Result.map
                            (fun lineage -> { shape; reg; lineage })
                            (formula_of_string payload)
                    | _ -> Error (Printf.sprintf "bad case line %S" line)))
          in
          match load rest with
          | exception Invalid_argument e -> Error e
          | r -> r))

let file_name case =
  Printf.sprintf "lcase-%s.txt"
    (String.sub (Digest.to_hex (Digest.string (to_string case))) 0 12)

let save ~dir case =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path = Filename.concat dir (file_name case) in
  let oc = open_out path in
  output_string oc (to_string case);
  close_out oc;
  path

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let load path =
  match of_string (read_file path) with
  | Ok c -> Ok c
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | exception Sys_error e -> Error e

let load_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           String.length f > 6
           && String.sub f 0 6 = "lcase-"
           && Filename.check_suffix f ".txt")
    |> List.sort compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           match load path with
           | Ok c -> (f, c)
           | Error e -> failwith e)

(* ---------- brute-force oracle ---------- *)

let brute_var_limit = 18

(* Recursive enumeration over independent vars and whole blocks; the
   assignment array is reused across branches. *)
let brute reg f =
  let n = Lineage.Registry.num_vars reg in
  let blocks = Hashtbl.create 8 in
  let groups = ref [] in
  for v = n - 1 downto 0 do
    match Lineage.Registry.block_of reg v with
    | None -> groups := `Var v :: !groups
    | Some b ->
        if not (Hashtbl.mem blocks b) then begin
          Hashtbl.replace blocks b ();
          groups := `Block b :: !groups
        end
  done;
  let assign = Array.make (max n 1) false in
  let total = ref 0. in
  let rec go q = function
    | [] -> if Lineage.eval f (fun v -> assign.(v)) then total := !total +. q
    | `Var v :: rest ->
        let p = Lineage.Registry.prob reg v in
        assign.(v) <- true;
        go (q *. p) rest;
        assign.(v) <- false;
        go (q *. (1. -. p)) rest
    | `Block b :: rest ->
        let members = Lineage.Registry.block_members reg b in
        let mass =
          List.fold_left (fun acc w -> acc +. Lineage.Registry.prob reg w) 0. members
        in
        List.iter
          (fun w ->
            assign.(w) <- true;
            go (q *. Lineage.Registry.prob reg w) rest;
            assign.(w) <- false)
          members;
        if mass < 1. -. 1e-12 then go (q *. (1. -. mass)) rest
  in
  go 1. !groups;
  !total

(* ---------- metamorphic scrambles ---------- *)

let shuffle_list rng l =
  let a = Array.of_list l in
  Prng.shuffle rng a;
  Array.to_list a

let rec scramble rng f =
  let f =
    match f with
    | Lineage.And fs -> Lineage.And (shuffle_list rng (List.map (scramble rng) fs))
    | Lineage.Or fs -> Lineage.Or (shuffle_list rng (List.map (scramble rng) fs))
    | Lineage.Not g -> Lineage.Not (scramble rng g)
    | leaf -> leaf
  in
  match (f, Prng.int rng 5) with
  | f, 0 -> Lineage.Not (Lineage.Not f)
  | Lineage.Or (g :: rest), 1 -> Lineage.Or (g :: g :: rest)
  | Lineage.And (g :: rest), 1 -> Lineage.And (g :: g :: rest)
  | Lineage.And fs, 2 -> Lineage.Not (Lineage.Or (List.map (fun g -> Lineage.Not g) fs))
  | Lineage.Or fs, 2 -> Lineage.Not (Lineage.And (List.map (fun g -> Lineage.Not g) fs))
  | f, 3 -> Lineage.And [ f ]
  | f, _ -> f

(* ---------- checking ---------- *)

type verdict = { checks : int; failure : (string * string) option }

exception Fail of string * string

let mc_samples = 10_000

let check_case ?(readonce = true) ?(expect = Lineage_gen.Unknown) case =
  let checks = ref 0 in
  let ensure name detail cond =
    incr checks;
    Obs.Counter.incr checks_total;
    if not cond then raise (Fail (name, detail ()))
  in
  let reg = case.reg and f = case.lineage in
  let failure =
    try
      let nvars = List.length (Lineage.vars f) in
      let p_base = Inference.probability ~readonce:false reg f in
      ensure "probability-range"
        (fun () -> Printf.sprintf "Pr = %.17g outside [0,1]" p_base)
        (Fcmp.is_probability ~eps:1e-9 p_base);
      (* 1. read-once fast path vs Shannon expansion *)
      if readonce then begin
        let p_fast = Inference.probability ~readonce:true reg f in
        ensure "readonce-vs-shannon"
          (fun () ->
            Printf.sprintf "readonce %.17g vs shannon %.17g" p_fast p_base)
          (Fcmp.approx ~eps:1e-9 p_fast p_base);
        (* direct factored evaluation, when detection succeeds *)
        match Readonce.probability reg f with
        | None -> ()
        | Some p_ro ->
            ensure "readonce-eval"
              (fun () ->
                Printf.sprintf "factored eval %.17g vs shannon %.17g" p_ro p_base)
              (Fcmp.approx ~eps:1e-9 p_ro p_base)
      end;
      (* 2. pure Shannon (no component decomposition) on small instances *)
      if nvars <= brute_var_limit then begin
        let p_pure =
          Inference.probability ~decompose:false ~readonce:false reg f
        in
        ensure "pure-shannon"
          (fun () ->
            Printf.sprintf "undecomposed %.17g vs decomposed %.17g" p_pure p_base)
          (Fcmp.approx ~eps:1e-9 p_pure p_base)
      end;
      (* 3. brute-force possible worlds *)
      if nvars <= brute_var_limit then begin
        let p_brute = brute reg f in
        ensure "brute-force"
          (fun () ->
            Printf.sprintf "inference %.17g vs possible worlds %.17g" p_base
              p_brute)
          (Fcmp.approx ~eps:1e-6 p_base p_brute)
      end;
      (* 4. Monte Carlo within a 5-sigma band *)
      let seed = Hashtbl.hash (to_string case) land 0xFFFFFF in
      let mc =
        Inference.probability_mc (Prng.create ~seed ()) reg ~samples:mc_samples f
      in
      let sigma =
        sqrt (Float.max 1e-6 (p_base *. (1. -. p_base)) /. float_of_int mc_samples)
      in
      let band = (5. *. sigma) +. 1e-3 in
      ensure "monte-carlo"
        (fun () ->
          Printf.sprintf "inference %.17g vs MC %.17g (band %.3g)" p_base mc band)
        (Float.abs (p_base -. mc) <= band);
      (* 5. metamorphic scrambles preserve verdict and probability *)
      let verdict g = Option.is_some (Readonce.detect reg g) in
      let base_verdict = verdict f in
      for i = 0 to 2 do
        let rng = Prng.create ~seed:(seed + i) () in
        let g = scramble rng f in
        ensure "metamorphic-verdict"
          (fun () ->
            Printf.sprintf "read-once verdict flipped (%b) on scramble %d"
              base_verdict i)
          (verdict g = base_verdict);
        let p_scrambled = Inference.probability ~readonce reg g in
        ensure "metamorphic-probability"
          (fun () ->
            Printf.sprintf "probability %.17g became %.17g on scramble %d" p_base
              p_scrambled i)
          (Fcmp.approx ~eps:1e-9 p_base p_scrambled)
      done;
      (* 6. generator theory expectations (fresh cases only) *)
      (match expect with
      | Lineage_gen.Unknown -> ()
      | Lineage_gen.Readonce ->
          ensure "expect-readonce"
            (fun () ->
              Printf.sprintf "shape %s should be read-once: %s" case.shape
                (Lineage.to_string f))
            (verdict f)
      | Lineage_gen.Not_readonce ->
          ensure "expect-not-readonce"
            (fun () ->
              Printf.sprintf "shape %s should not be read-once: %s" case.shape
                (Lineage.to_string f))
            (not (verdict f)));
      None
    with
    | Fail (name, detail) -> Some (name, detail)
    | e -> Some ("exception", Printexc.to_string e)
  in
  { checks = !checks; failure }

(* ---------- shrinking ---------- *)

(* Structural reduction candidates; the registry is left as-is (unused
   variables are harmless and keep ids stable). *)
let candidates case =
  let f = case.lineage in
  let with_f g = { case with lineage = Lineage.simplify g } in
  let subformulas =
    match f with
    | Lineage.And fs | Lineage.Or fs -> List.map with_f fs
    | Lineage.Not g -> [ with_f g ]
    | _ -> []
  in
  let drops =
    match f with
    | Lineage.And fs when List.length fs > 1 ->
        List.mapi
          (fun i _ -> with_f (Lineage.And (List.filteri (fun j _ -> j <> i) fs)))
          fs
    | Lineage.Or fs when List.length fs > 1 ->
        List.mapi
          (fun i _ -> with_f (Lineage.Or (List.filteri (fun j _ -> j <> i) fs)))
          fs
    | _ -> []
  in
  let substitutions =
    Lineage.vars f
    |> List.concat_map (fun v ->
           [ with_f (Lineage.substitute f v false); with_f (Lineage.substitute f v true) ])
  in
  subformulas @ drops @ substitutions

let shrink ?(max_steps = 200) still_fails case =
  let steps = ref 0 in
  let rec go case =
    if !steps >= max_steps then case
    else
      let size = Lineage.size case.lineage in
      match
        List.find_opt
          (fun c -> Lineage.size c.lineage < size && still_fails c)
          (candidates case)
      with
      | None -> case
      | Some c ->
          incr steps;
          go c
  in
  let shrunk = go case in
  (shrunk, !steps)

(* ---------- campaigns ---------- *)

type config = {
  seed : int;
  iters : int;
  readonce : bool;
  corpus_dir : string option;
}

let default_config = { seed = 0; iters = 500; readonce = true; corpus_dir = None }

type discrepancy = {
  case : case;
  check : string;
  detail : string;
  shrunk : case;
  shrink_steps : int;
  path : string option;
}

type report = { cases : int; total_checks : int; discrepancies : discrepancy list }

let run config =
  if config.iters < 0 then invalid_arg "Lineage_fuzz.run: negative iteration count";
  let rng = Prng.create ~seed:config.seed () in
  let cases = ref 0 and total_checks = ref 0 and discrepancies = ref [] in
  for _ = 1 to config.iters do
    let g = Lineage_gen.gen rng in
    let case = of_gen g in
    incr cases;
    Obs.Counter.incr cases_total;
    let { checks; failure } =
      check_case ~readonce:config.readonce ~expect:g.Lineage_gen.expect case
    in
    total_checks := !total_checks + checks;
    match failure with
    | None -> ()
    | Some (check, detail) ->
        Obs.Counter.incr discrepancies_total;
        let still_fails c =
          (check_case ~readonce:config.readonce c).failure <> None
        in
        let shrunk, shrink_steps = shrink still_fails case in
        let path =
          Option.map (fun dir -> save ~dir shrunk) config.corpus_dir
        in
        discrepancies :=
          { case; check; detail; shrunk; shrink_steps; path } :: !discrepancies
  done;
  {
    cases = !cases;
    total_checks = !total_checks;
    discrepancies = List.rev !discrepancies;
  }

let replay ~dir () =
  load_dir dir
  |> List.filter_map (fun (file, case) ->
         match (check_case case).failure with
         | None -> None
         | Some (check, detail) -> Some (file, check, detail))
