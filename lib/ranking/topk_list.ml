type t = int array

let of_world ~k alts =
  let sorted =
    List.sort
      (fun (a : Consensus_anxor.Db.alt) b -> Float.compare b.value a.value)
      alts
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | (a : Consensus_anxor.Db.alt) :: rest -> a.key :: take (n - 1) rest
  in
  Array.of_list (take k sorted)

let position l key =
  let n = Array.length l in
  let rec go i = if i >= n then None else if l.(i) = key then Some (i + 1) else go (i + 1) in
  go 0

let mem l key = position l key <> None

let validate ~k l =
  if Array.length l > k then invalid_arg "Topk_list.validate: longer than k";
  let module S = Set.Make (Int) in
  let s = Array.fold_left (fun acc key -> S.add key acc) S.empty l in
  if S.cardinal s <> Array.length l then
    invalid_arg "Topk_list.validate: duplicate keys"

let overlap l1 l2 =
  Array.fold_left (fun acc key -> if mem l2 key then acc + 1 else acc) 0 l1

let sym_diff_raw l1 l2 =
  Array.length l1 + Array.length l2 - (2 * overlap l1 l2)

let sym_diff ~k l1 l2 = float_of_int (sym_diff_raw l1 l2) /. float_of_int (2 * k)

let prefix l i = Array.sub l 0 (min i (Array.length l))

let intersection ~k l1 l2 =
  let acc = ref 0. in
  for i = 1 to k do
    acc :=
      !acc
      +. (float_of_int (sym_diff_raw (prefix l1 i) (prefix l2 i))
         /. float_of_int (2 * i))
  done;
  !acc /. float_of_int k

let footrule ~k l1 l2 =
  (* F^(k+1): the usual footrule after placing missing elements at k+1. *)
  let pos l key = match position l key with Some p -> p | None -> k + 1 in
  let module S = Set.Make (Int) in
  let union =
    S.union
      (Array.fold_left (fun acc x -> S.add x acc) S.empty l1)
      (Array.fold_left (fun acc x -> S.add x acc) S.empty l2)
  in
  S.fold
    (fun key acc -> acc +. float_of_int (abs (pos l1 key - pos l2 key)))
    union 0.

let kendall_p ~p ~k l1 l2 =
  ignore k;
  if p < 0. || p > 1. then invalid_arg "Topk_list.kendall_p: p must be in [0,1]";
  let module S = Set.Make (Int) in
  let s1 = Array.fold_left (fun acc x -> S.add x acc) S.empty l1 in
  let s2 = Array.fold_left (fun acc x -> S.add x acc) S.empty l2 in
  let union = S.union s1 s2 |> S.elements |> Array.of_list in
  let n = Array.length union in
  let total = ref 0. in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      let i = union.(a) and j = union.(b) in
      let p1i = position l1 i and p1j = position l1 j in
      let p2i = position l2 i and p2j = position l2 j in
      let contribution =
        match (p1i, p1j, p2i, p2j) with
        | Some a1, Some b1, Some a2, Some b2 ->
            if (a1 < b1 && a2 > b2) || (a1 > b1 && a2 < b2) then 1. else 0.
        | Some _, Some _, Some _, None -> if p1j < p1i then 1. else 0.
        | Some _, Some _, None, Some _ -> if p1i < p1j then 1. else 0.
        | Some _, None, Some _, Some _ -> if p2j < p2i then 1. else 0.
        | None, Some _, Some _, Some _ -> if p2i < p2j then 1. else 0.
        | Some _, None, None, Some _ -> 1.
        | None, Some _, Some _, None -> 1.
        | Some _, Some _, None, None -> p (* undetermined pair *)
        | None, None, Some _, Some _ -> p
        | _ -> 0.
      in
      total := !total +. contribution
    done
  done;
  !total

let kendall ~k l1 l2 =
  ignore k;
  (* K_min: pairs forced to disagree in all full-ranking extensions. *)
  let module S = Set.Make (Int) in
  let s1 = Array.fold_left (fun acc x -> S.add x acc) S.empty l1 in
  let s2 = Array.fold_left (fun acc x -> S.add x acc) S.empty l2 in
  let union = S.union s1 s2 |> S.elements |> Array.of_list in
  let n = Array.length union in
  let count = ref 0 in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      let i = union.(a) and j = union.(b) in
      let p1i = position l1 i and p1j = position l1 j in
      let p2i = position l2 i and p2j = position l2 j in
      let disagree =
        match (p1i, p1j, p2i, p2j) with
        | Some a1, Some b1, Some a2, Some b2 ->
            (* both pairs ranked in both lists *)
            (a1 < b1 && a2 > b2) || (a1 > b1 && a2 < b2)
        | Some _, Some _, Some _, None ->
            (* j missing from l2: j after i there; forced iff l1 has j first *)
            p1j < p1i
        | Some _, Some _, None, Some _ -> p1i < p1j
        | Some _, None, Some _, Some _ -> p2j < p2i
        | None, Some _, Some _, Some _ -> p2i < p2j
        | Some _, None, None, Some _ -> true
        | None, Some _, Some _, None -> true
        | _ -> false
      in
      if disagree then incr count
    done
  done;
  float_of_int !count

let pp ppf l =
  Format.fprintf ppf "[%s]"
    (Array.to_list l |> List.map string_of_int |> String.concat "; ")
