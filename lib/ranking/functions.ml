open Consensus_anxor

let top_by_score ~k scored =
  let sorted = List.sort (fun (_, a) (_, b) -> Float.compare b a) scored in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | (key, _) :: rest -> key :: take (n - 1) rest
  in
  Array.of_list (take k sorted)

let rank_leq_scores db ~k =
  Marginals.rank_table db ~k
  |> List.map (fun (key, dist) -> (key, Array.fold_left ( +. ) 0. dist))

let global_topk db ~k = top_by_score ~k (rank_leq_scores db ~k)

let pt_k db ~threshold ~k =
  rank_leq_scores db ~k
  |> List.filter (fun (_, p) -> p >= threshold)
  |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
  |> List.map fst |> Array.of_list

let u_topk ?limit db ~k =
  let worlds = Worlds.enumerate ?limit (Db.tree db) in
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (p, w) ->
      let answer = Topk_list.of_world ~k w in
      let key = Array.to_list answer in
      let prev = Option.value (Hashtbl.find_opt tbl key) ~default:0. in
      Hashtbl.replace tbl key (prev +. p))
    worlds;
  let best =
    Hashtbl.fold
      (fun answer p acc ->
        match acc with
        | Some (_, bp) when bp >= p -> acc
        | _ -> Some (answer, p))
      tbl None
  in
  match best with None -> [||] | Some (answer, _) -> Array.of_list answer

type search_state = {
  next : int; (* index into the score-sorted alternatives *)
  chosen : int list; (* keys, most recently chosen first *)
  nchosen : int;
}

(* Exact Pr(top-k answer = τ) for BID/independent databases: a linear DP
   over the score-sorted alternatives tracking how much of τ has been
   realized.  While j < |τ| every alternative of a key outside the realized
   prefix must be absent; alternatives of already-realized keys are absent
   with conditional probability 1; once j = k the remainder is
   unconstrained. *)
let u_topk_answer_probability db ~k tau =
  if not (Db.is_independent db || Db.blocks_single_key db) then
    invalid_arg
      "Functions.u_topk_answer_probability: requires an independent or single-key-block BID database";
  Topk_list.validate ~k tau;
  let n = Db.num_alts db in
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b -> Float.compare (Db.alt db b).Db.value (Db.alt db a).Db.value)
    order;
  let len = Array.length tau in
  let pos_in_tau = Hashtbl.create 8 in
  Array.iteri (fun j key -> Hashtbl.replace pos_in_tau key j) tau;
  let prior = Hashtbl.create 64 in
  let dp = Array.make (len + 1) 0. in
  dp.(0) <- 1.;
  let finished = ref 0. in
  (* mass that has already realized all of τ with |τ| = k: unconstrained *)
  Array.iter
    (fun l ->
      let a = Db.alt db l in
      let p = Db.marginal db l in
      let m = Option.value (Hashtbl.find_opt prior a.Db.key) ~default:0. in
      Hashtbl.replace prior a.Db.key (m +. p);
      let remaining = 1. -. m in
      if len = k then begin
        finished := !finished +. dp.(len);
        dp.(len) <- 0.
      end;
      if remaining > 1e-12 then begin
        let absent = (remaining -. p) /. remaining in
        let present = p /. remaining in
        match Hashtbl.find_opt pos_in_tau a.Db.key with
        | Some j ->
            (* state j: branch on this alternative; states below j: the key
               is needed later, so it is forced absent; states above j: the
               key is already realized, factor 1 *)
            dp.(j + 1) <- dp.(j + 1) +. (dp.(j) *. present);
            dp.(j) <- dp.(j) *. absent;
            for state = 0 to j - 1 do
              dp.(state) <- dp.(state) *. absent
            done
        | None ->
            (* outside τ: forced absent until τ is fully realized *)
            for state = 0 to min (len - 1) (k - 1) do
              dp.(state) <- dp.(state) *. absent
            done;
            if len < k then dp.(len) <- dp.(len) *. absent
      end
      (* remaining <= 0: the block is exhausted, so conditional on the
         earlier alternatives being absent (a probability-0 path) nothing
         meaningful remains; leave the negligible mass untouched *)
      )
    order;
  !finished +. dp.(len)

(* Soliman et al.'s best-first U-Top-k.  For tuple-level databases (one
   alternative per key) a state (scan position, chosen keys) describes a
   unique event and probabilities only shrink along transitions, so the
   first completed state popped from a max-heap is the exact mode.  For
   attribute-level (multi-alternative) keys, several events share a key
   answer and must be aggregated; there we run an exact level-by-level DP
   over the scan positions, merging states with equal chosen-key prefixes
   and accumulating completed answers. *)
let tuple_level db =
  Array.for_all
    (fun key -> match Db.alts_of_key db key with [ _ ] -> true | _ -> false)
    (Db.keys db)

let scan_order db =
  let n = Db.num_alts db in
  let order = Array.init n Fun.id in
  Array.sort
    (fun a b -> Float.compare (Db.alt db b).Db.value (Db.alt db a).Db.value)
    order;
  (* prior_mass.(i): total probability of earlier-scanned alternatives of
     the same key — determines the conditional factors of both branches. *)
  let prior_mass = Array.make n 0. in
  let seen = Hashtbl.create 64 in
  Array.iteri
    (fun pos l ->
      let key = (Db.alt db l).Db.key in
      let m = Option.value (Hashtbl.find_opt seen key) ~default:0. in
      prior_mass.(pos) <- m;
      Hashtbl.replace seen key (m +. Db.marginal db l))
    order;
  (order, prior_mass)

let u_topk_heap ~max_expansions db ~k =
  let n = Db.num_alts db in
  let order, prior_mass = scan_order db in
  let heap = Consensus_util.Heap.create () in
  Consensus_util.Heap.push heap 1. { next = 0; chosen = []; nchosen = 0 };
  let expansions = ref 0 in
  let rec search () =
    match Consensus_util.Heap.pop_max heap with
    | None -> ([||], 0.) (* empty database *)
    | Some (prob, state) ->
        if state.nchosen = k || state.next = n then
          (Array.of_list (List.rev state.chosen), prob)
        else begin
          incr expansions;
          if !expansions > max_expansions then
            invalid_arg "Functions.u_topk_best_first: expansion limit exceeded";
          let l = order.(state.next) in
          let key = (Db.alt db l).Db.key in
          let p = Db.marginal db l in
          let remaining = 1. -. prior_mass.(state.next) in
          if remaining > 1e-12 then begin
            let p_present = prob *. p /. remaining in
            if p_present > 0. then
              Consensus_util.Heap.push heap p_present
                {
                  next = state.next + 1;
                  chosen = key :: state.chosen;
                  nchosen = state.nchosen + 1;
                };
            let p_absent = prob *. (remaining -. p) /. remaining in
            if p_absent > 0. then
              Consensus_util.Heap.push heap p_absent { state with next = state.next + 1 }
          end;
          search ()
        end
  in
  search ()

let u_topk_level_dp ~max_expansions db ~k =
  let n = Db.num_alts db in
  let order, prior_mass = scan_order db in
  let answers : (int list, float) Hashtbl.t = Hashtbl.create 64 in
  let record chosen prob =
    if prob > 0. then
      Hashtbl.replace answers chosen
        (prob +. Option.value (Hashtbl.find_opt answers chosen) ~default:0.)
  in
  (* level i: chosen-key list (scan order, most recent first) -> prob *)
  let level : (int list, float) Hashtbl.t ref = ref (Hashtbl.create 64) in
  Hashtbl.replace !level [] 1.;
  let states = ref 0 in
  for i = 0 to n - 1 do
    let next : (int list, float) Hashtbl.t = Hashtbl.create 64 in
    let l = order.(i) in
    let key = (Db.alt db l).Db.key in
    let p = Db.marginal db l in
    let remaining = 1. -. prior_mass.(i) in
    let add chosen prob =
      if prob > 0. then begin
        incr states;
        if !states > max_expansions then
          invalid_arg "Functions.u_topk_best_first: state limit exceeded";
        Hashtbl.replace next chosen
          (prob +. Option.value (Hashtbl.find_opt next chosen) ~default:0.)
      end
    in
    Hashtbl.iter
      (fun chosen prob ->
        if List.mem key chosen then add chosen prob
        else if remaining > 1e-12 then begin
          let extended = key :: chosen in
          let p_present = prob *. p /. remaining in
          if List.length extended = k then record extended p_present
          else add extended p_present;
          add chosen (prob *. (remaining -. p) /. remaining)
        end)
      !level;
    level := next
  done;
  Hashtbl.iter (fun chosen prob -> record chosen prob) !level;
  let best =
    Hashtbl.fold
      (fun chosen prob acc ->
        match acc with
        | Some (_, bp) when bp >= prob -> acc
        | _ -> Some (chosen, prob))
      answers None
  in
  match best with
  | None -> ([||], 0.)
  | Some (chosen, prob) -> (Array.of_list (List.rev chosen), prob)

let u_topk_best_first ?(max_expansions = 1_000_000) db ~k =
  (* Per-key exclusion masses require every xor block to hold one key; the
     multi-key x-tuple shape would need block-level tracking. *)
  if not (Db.is_independent db || Db.blocks_single_key db) then
    invalid_arg
      "Functions.u_topk_best_first: requires an independent or single-key-block BID database";
  if tuple_level db then u_topk_heap ~max_expansions db ~k
  else u_topk_level_dp ~max_expansions db ~k

let u_kranks db ~k =
  let table = Marginals.rank_table db ~k in
  let used = Hashtbl.create 16 in
  let winners =
    List.init k (fun i ->
        (* Key maximizing Pr(r(t) = i+1). *)
        let best =
          List.fold_left
            (fun acc (key, dist) ->
              match acc with
              | Some (_, bp) when bp >= dist.(i) -> acc
              | _ -> Some (key, dist.(i)))
            None table
        in
        Option.map fst best)
  in
  (* Replace duplicate winners with the best unused key for that position. *)
  let result =
    List.mapi
      (fun i w ->
        let fresh_best () =
          List.filter (fun (key, _) -> not (Hashtbl.mem used key)) table
          |> List.fold_left
               (fun acc (key, dist) ->
                 match acc with
                 | Some (_, bp) when bp >= dist.(i) -> acc
                 | _ -> Some (key, dist.(i)))
               None
          |> Option.map fst
        in
        let choice =
          match w with
          | Some key when not (Hashtbl.mem used key) -> Some key
          | _ -> fresh_best ()
        in
        Option.iter (fun key -> Hashtbl.replace used key ()) choice;
        choice)
      winners
  in
  List.filter_map Fun.id result |> Array.of_list

let expected_ranks db ~k =
  Db.keys db |> Array.to_list
  |> List.map (fun key -> (key, -.Marginals.expected_rank db key))
  |> top_by_score ~k

let expected_scores db ~k =
  Db.keys db |> Array.to_list
  |> List.map (fun key -> (key, Marginals.expected_value db key))
  |> top_by_score ~k

let upsilon_h_scores db ~k =
  Marginals.rank_table db ~k
  |> List.map (fun (key, dist) ->
         let acc = ref 0. and prefix = ref 0. in
         (* ΥH(t) = Σ_{i<=k} Pr(r <= i)/i with Pr(r <= i) accumulated. *)
         Array.iteri
           (fun idx p ->
             prefix := !prefix +. p;
             acc := !acc +. (!prefix /. float_of_int (idx + 1)))
           dist;
         (key, !acc))

let upsilon_h db ~k = top_by_score ~k (upsilon_h_scores db ~k)

(* Upper bound on Pr(r(t) <= k) = Pr(t present ∧ N_t <= k-1), where N_t is
   the number of higher-valued present tuples:
     <= Pr(t) · min(1, (n̄ - E[N_t]) / (n̄ - (k-1)))       (reverse Markov)
   with n̄ an upper bound on N_t's support (#other keys) and E[N_t] the sum
   of higher-valued leaf marginals of other keys (exact by linearity, no
   independence needed). *)
let rank_leq_upper_bound db ~k =
  let n_alts = Db.num_alts db in
  let n_keys = Db.num_keys db in
  (* leaves sorted by decreasing value with prefix sums of marginals *)
  let order = Array.init n_alts Fun.id in
  Array.sort
    (fun a b -> Float.compare (Db.alt db b).Db.value (Db.alt db a).Db.value)
    order;
  let prefix = Array.make (n_alts + 1) 0. in
  Array.iteri
    (fun i l -> prefix.(i + 1) <- prefix.(i) +. Db.marginal db l)
    order;
  (* value -> mass of strictly-higher-valued leaves, via binary search *)
  let higher_mass value =
    let lo = ref 0 and hi = ref n_alts in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if (Db.alt db order.(mid)).Db.value > value then lo := mid + 1 else hi := mid
    done;
    prefix.(!lo)
  in
  let key_mass key =
    List.fold_left (fun acc l -> acc +. Db.marginal db l) 0. (Db.alts_of_key db key)
  in
  Db.keys db |> Array.to_list
  |> List.map (fun key ->
         let bound =
           List.fold_left
             (fun acc l ->
               let a = Db.alt db l in
               (* exclude this key's own higher alternatives: they are
                  mutually exclusive with l, never counted in N_t *)
               let own_higher =
                 List.fold_left
                   (fun s l' ->
                     if (Db.alt db l').Db.value > a.Db.value then
                       s +. Db.marginal db l'
                     else s)
                   0. (Db.alts_of_key db key)
               in
               let expected_n = Float.max 0. (higher_mass a.Db.value -. own_higher) in
               let support = float_of_int (max 1 (n_keys - 1)) in
               let markov =
                 if float_of_int (k - 1) >= support then 1.
                 else
                   Float.min 1.
                     ((support -. expected_n) /. (support -. float_of_int (k - 1)))
               in
               (* Pr(a ∧ N <= k-1) <= min(Pr a, Pr(N <= k-1)) — no
                  independence assumption *)
               acc +. Float.min (Db.marginal db l) (Float.max 0. markov))
             0. (Db.alts_of_key db key)
         in
         (key, Float.min bound (key_mass key)))

let global_topk_pruned db ~k =
  let bounds =
    rank_leq_upper_bound db ~k
    |> List.sort (fun (_, a) (_, b) -> Float.compare b a)
  in
  let evaluated = ref 0 in
  (* running exact scores of visited keys *)
  let exact = ref [] in
  let theta () =
    let sorted = List.sort (fun a b -> Float.compare b a) (List.map snd !exact) in
    match List.nth_opt sorted (k - 1) with Some v -> v | None -> -1.
  in
  let rec visit = function
    | [] -> ()
    | (key, ub) :: rest ->
        if ub <= theta () +. 1e-12 && List.length !exact >= k then ()
        else begin
          incr evaluated;
          let p = Array.fold_left ( +. ) 0. (Marginals.rank_dist db key ~k) in
          exact := (key, p) :: !exact;
          visit rest
        end
  in
  visit bounds;
  (top_by_score ~k !exact, !evaluated)

let prf db ~w ~k =
  let n = Db.num_alts db in
  Db.keys db |> Array.to_list
  |> List.map (fun key ->
         let score = ref 0. in
         List.iter
           (fun l ->
             let dist = Marginals.full_rank_dist_alt db l in
             Array.iteri
               (fun m p -> score := !score +. (w (m + 1) *. p))
               dist)
           (Db.alts_of_key db key);
         ignore n;
         (key, !score))
  |> top_by_score ~k
