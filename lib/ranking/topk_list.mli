(** Top-k answer lists and the distance metrics between them (paper §5.1,
    following Fagin, Kumar and Sivakumar, "Comparing top k lists").

    A top-k answer is an ordered array of distinct keys, highest-ranked
    first.  Lists shorter than [k] arise from worlds with fewer than [k]
    tuples and are handled by all metrics. *)

type t = int array

val of_world : k:int -> Consensus_anxor.Db.alt list -> t
(** Keys of the [k] highest-valued alternatives of a possible world. *)

val position : t -> int -> int option
(** 1-based position of a key, if present. *)

val mem : t -> int -> bool

val sym_diff : k:int -> t -> t -> float
(** Normalized symmetric difference [|τ1 Δ τ2| / 2k]; ignores order. *)

val intersection : k:int -> t -> t -> float
(** Fagin's intersection metric: the average over depths [i = 1..k] of the
    normalized symmetric difference of the two depth-[i] prefixes. *)

val footrule : k:int -> t -> t -> float
(** Spearman's footrule with location parameter [k+1] (the paper's [dF]):
    missing elements are placed at position [k+1]. *)

val kendall : k:int -> t -> t -> float
(** The minimizing Kendall distance [K_min]: the number of unordered pairs
    whose order must disagree in every pair of full-ranking extensions. *)

val kendall_p : p:float -> k:int -> t -> t -> float
(** Fagin's Kendall distance with penalty parameter [p ∈ \[0, 1\]]: pairs
    whose relative order is undetermined (both appear in one list and
    neither in the other) contribute [p] instead of 0.  [kendall_p ~p:0.]
    is {!kendall}; [p = 1/2] is the neutral variant. *)

val validate : k:int -> t -> unit
(** Raise [Invalid_argument] on duplicate keys or length > k. *)

val pp : Format.formatter -> t -> unit
