open Consensus_util

let check_square pref name =
  let n = Array.length pref in
  Array.iter
    (fun row -> if Array.length row <> n then invalid_arg (name ^ ": ragged matrix"))
    pref;
  n

let cost pref order =
  let n = Array.length order in
  let acc = ref 0. in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      acc := !acc +. pref.(order.(b)).(order.(a))
    done
  done;
  !acc

let kemeny_exact pref =
  let n = check_square pref "Aggregation.kemeny_exact" in
  if n > 22 then invalid_arg "Aggregation.kemeny_exact: n too large (max 22)";
  if n = 0 then ([||], 0.)
  else begin
    let size = 1 lsl n in
    let dp = Array.make size infinity in
    let choice = Array.make size (-1) in
    dp.(0) <- 0.;
    (* dp.(mask): minimum cost of ordering the items of [mask] as a prefix.
       Appending v after the set [mask] pays pref.(v).(u) for all u in mask
       (v is ordered after every u, so each pair (u, v) contributes the
       weight of preferring v before u). *)
    for mask = 0 to size - 1 do
      (* Cooperative cancellation: this DP is the one exponential kernel, so
         an expired request must be able to bail out mid-subset-sweep. *)
      if mask land 0xfff = 0 then Deadline.check_current ();
      if dp.(mask) < infinity then
        for v = 0 to n - 1 do
          if mask land (1 lsl v) = 0 then begin
            let extra = ref 0. in
            for u = 0 to n - 1 do
              if mask land (1 lsl u) <> 0 then extra := !extra +. pref.(v).(u)
            done;
            let next = mask lor (1 lsl v) in
            let c = dp.(mask) +. !extra in
            if c < dp.(next) -. 1e-15 then begin
              dp.(next) <- c;
              choice.(next) <- v
            end
          end
        done
    done;
    let order = Array.make n 0 in
    let mask = ref (size - 1) in
    for pos = n - 1 downto 0 do
      let v = choice.(!mask) in
      order.(pos) <- v;
      mask := !mask lxor (1 lsl v)
    done;
    (order, dp.(size - 1))
  end

let pivot rng pref =
  let n = check_square pref "Aggregation.pivot" in
  let rec sort items =
    match items with
    | [] -> []
    | _ ->
        let arr = Array.of_list items in
        let p = arr.(Prng.int rng (Array.length arr)) in
        let rest = List.filter (fun i -> i <> p) items in
        let before, after =
          List.partition (fun i -> pref.(i).(p) > pref.(p).(i)) rest
        in
        sort before @ (p :: sort after)
  in
  let order = Array.of_list (sort (List.init n Fun.id)) in
  (order, cost pref order)

let best_pivot_of rng ~trials pref =
  if trials <= 0 then invalid_arg "Aggregation.best_pivot_of: trials must be positive";
  let best = ref None in
  for _ = 1 to trials do
    let order, c = pivot rng pref in
    match !best with
    | Some (_, bc) when bc <= c -> ()
    | _ -> best := Some (order, c)
  done;
  Option.get !best

let local_search pref order0 =
  let n = Array.length order0 in
  let order = Array.copy order0 in
  let current = ref (cost pref order) in
  let improved = ref true in
  while !improved do
    improved := false;
    Deadline.check_current ();
    for i = 0 to n - 1 do
      (* Try moving the item at position i to every other position; compute
         the delta incrementally by sweeping the insertion point. *)
      let item = order.(i) in
      (* Cost delta of swapping item across its neighbor at position j. *)
      let best_delta = ref 0. and best_pos = ref i in
      (* Move left. *)
      let delta = ref 0. in
      for j = i - 1 downto 0 do
        let other = order.(j) in
        (* item moves before other *)
        delta := !delta +. pref.(other).(item) -. pref.(item).(other);
        if !delta < !best_delta -. 1e-12 then begin
          best_delta := !delta;
          best_pos := j
        end
      done;
      (* Move right. *)
      let delta = ref 0. in
      for j = i + 1 to n - 1 do
        let other = order.(j) in
        delta := !delta +. pref.(item).(other) -. pref.(other).(item);
        if !delta < !best_delta -. 1e-12 then begin
          best_delta := !delta;
          best_pos := j
        end
      done;
      if !best_pos <> i then begin
        (* Perform the move. *)
        if !best_pos < i then begin
          Array.blit order !best_pos order (!best_pos + 1) (i - !best_pos);
          order.(!best_pos) <- item
        end
        else begin
          Array.blit order (i + 1) order i (!best_pos - i);
          order.(!best_pos) <- item
        end;
        current := !current +. !best_delta;
        improved := true
      end
    done
  done;
  (order, cost pref order)

let borda pref =
  let n = check_square pref "Aggregation.borda" in
  let score = Array.init n (fun i -> Array.fold_left ( +. ) 0. pref.(i)) in
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> Float.compare score.(b) score.(a)) order;
  (order, cost pref order)

let copeland pref =
  let n = check_square pref "Aggregation.copeland" in
  let wins =
    Array.init n (fun i ->
        let acc = ref 0 in
        for j = 0 to n - 1 do
          if j <> i && pref.(i).(j) > pref.(j).(i) then incr acc
        done;
        !acc)
  in
  let order = Array.init n Fun.id in
  Array.sort (fun a b -> compare wins.(b) wins.(a)) order;
  (order, cost pref order)

let mc4 ?(damping = 0.05) ?(iterations = 200) pref =
  let n = check_square pref "Aggregation.mc4" in
  if n = 0 then ([||], 0.)
  else begin
    (* Transition matrix: from i, pick j uniformly; move if the majority
       prefers j before i, else stay. *)
    let p = Array.make_matrix n n 0. in
    for i = 0 to n - 1 do
      let stay = ref 0. in
      for j = 0 to n - 1 do
        if j <> i then
          if pref.(j).(i) > pref.(i).(j) then p.(i).(j) <- 1. /. float_of_int n
          else stay := !stay +. (1. /. float_of_int n)
      done;
      p.(i).(i) <- !stay +. (1. /. float_of_int n)
    done;
    (* damping for irreducibility *)
    let uniform = 1. /. float_of_int n in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        p.(i).(j) <- ((1. -. damping) *. p.(i).(j)) +. (damping *. uniform)
      done
    done;
    let pi = Array.make n uniform in
    let next = Array.make n 0. in
    for _ = 1 to iterations do
      Array.fill next 0 n 0.;
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          next.(j) <- next.(j) +. (pi.(i) *. p.(i).(j))
        done
      done;
      Array.blit next 0 pi 0 n
    done;
    let order = Array.init n Fun.id in
    Array.sort (fun a b -> Float.compare pi.(b) pi.(a)) order;
    (order, cost pref order)
  end

let positions order =
  let n = Array.length order in
  let pos = Array.make n 0 in
  Array.iteri (fun p item -> pos.(item) <- p) order;
  ignore n;
  pos

let kendall_tau_permutations o1 o2 =
  let n = Array.length o1 in
  if Array.length o2 <> n then
    invalid_arg "Aggregation.kendall_tau_permutations: length mismatch";
  let p2 = positions o2 in
  let count = ref 0 in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      if p2.(o1.(a)) > p2.(o1.(b)) then incr count
    done
  done;
  !count

let footrule_permutations o1 o2 =
  let n = Array.length o1 in
  if Array.length o2 <> n then
    invalid_arg "Aggregation.footrule_permutations: length mismatch";
  let p1 = positions o1 and p2 = positions o2 in
  let acc = ref 0 in
  for item = 0 to n - 1 do
    acc := !acc + abs (p1.(item) - p2.(item))
  done;
  !acc

let footrule_aggregation posdist =
  let assignment, total = Consensus_matching.Hungarian.minimize posdist in
  (* assignment.(item) = position; invert to an ordered list. *)
  let n = Array.length assignment in
  let order = Array.make n (-1) in
  Array.iteri (fun item pos -> order.(pos) <- item) assignment;
  (order, total)
