(** Rank-aggregation toolkit over pairwise-preference matrices.

    An instance is a matrix [pref] with [pref.(i).(j)] the weight (for the
    probabilistic instances of §5.5: the probability [Pr(r(i) < r(j))]) of
    ordering item [i] before item [j].  The cost of a permutation is the
    total weight of the pairs it orders against the preference:
    [cost σ = Σ_{a < b} pref.(σ.(b)).(σ.(a))] — exactly the expected
    Kendall-tau distance to the input rankings when [pref] is a fraction /
    probability matrix (Kemeny aggregation). *)

val cost : float array array -> int array -> float
(** Expected Kendall cost of the permutation (item ids in order). *)

val kemeny_exact : float array array -> int array * float
(** Optimal aggregation by Held–Karp bitmask DP in O(2ⁿ·n²); requires
    [n <= 22].  The small-instance oracle used in tests and benches. *)

val pivot :
  Consensus_util.Prng.t -> float array array -> int array * float
(** Ailon–Charikar–Newman KwikSort: recursively partition around a random
    pivot using majority preference.  Expected constant-factor approximation
    for matrices satisfying the probability constraint
    [pref.(i).(j) + pref.(j).(i) <= 1]. *)

val best_pivot_of :
  Consensus_util.Prng.t -> trials:int -> float array array -> int array * float
(** Best of [trials] independent KwikSort runs. *)

val local_search : float array array -> int array -> int array * float
(** Single-item-move local search to a local optimum: repeatedly remove an
    item and reinsert it at its best position while the cost improves. *)

val borda : float array array -> int array * float
(** Borda-style baseline: sort by total preference weight
    [Σ_j pref.(i).(j)] decreasingly. *)

val copeland : float array array -> int array * float
(** Copeland baseline: sort by the number of majority wins
    [#\{j : pref.(i).(j) > pref.(j).(i)\}]. *)

val mc4 : ?damping:float -> ?iterations:int -> float array array -> int array * float
(** The MC4 Markov-chain aggregation of Dwork et al. (the paper's \[14\]):
    from state [i], move to a uniformly chosen [j] if a majority prefers
    [j] to [i], else stay; items are ranked by decreasing stationary
    probability (power iteration with optional damping for
    irreducibility). *)

val kendall_tau_permutations : int array -> int array -> int
(** Number of discordant pairs between two permutations of the same items. *)

val footrule_permutations : int array -> int array -> int
(** Spearman footrule (L1 positional) distance between two permutations of
    the same items. *)

val footrule_aggregation : float array array -> int array * float
(** Optimal {e footrule} aggregation via the assignment problem (Dwork et
    al.): [posdist.(i).(p)] is the cost of placing item [i] at position [p];
    returns the permutation minimizing the total.  Input is the full
    [n × n] position-cost matrix. *)
