(** Prior top-k ranking functions for probabilistic databases (paper §1–2),
    implemented over and/xor trees as baselines for the consensus answers.

    Every function returns an ordered key array of length at most [k]. *)

open Consensus_anxor

val global_topk : Db.t -> k:int -> Topk_list.t
(** Global-Top-k / PT-k answer set: the [k] keys with the largest
    [Pr(r(t) <= k)], ordered by that probability (Zhang–Chomicki; Hua et
    al.).  By Theorem 3 this is also the consensus mean top-k answer under
    the symmetric-difference metric. *)

val pt_k : Db.t -> threshold:float -> k:int -> Topk_list.t
(** The probabilistic-threshold form: all keys with [Pr(r(t) <= k)] above
    the threshold, ordered by the probability. *)

val u_topk : ?limit:int -> Db.t -> k:int -> Topk_list.t
(** U-Top-k (Soliman et al.): the most probable top-k {e vector}, i.e. the
    mode of the distribution of top-k answers across worlds.  Computed by
    exact world enumeration; [limit] bounds the enumeration (default
    200_000 worlds).  Prefer {!u_topk_best_first} for independent/BID
    databases. *)

val u_topk_answer_probability : Db.t -> k:int -> Topk_list.t -> float
(** Exact [Pr(top-k answer = τ)] for a BID / tuple-independent database by
    a linear DP over the score-sorted alternatives (used to report the
    mode's probability, and a useful primitive on its own). *)

val u_topk_best_first :
  ?max_expansions:int -> Db.t -> k:int -> Topk_list.t * float
(** Soliman et al.'s exact best-first U-Top-k for tuple-independent and
    BID databases: scan alternatives in decreasing score order, expanding
    partial answers in decreasing probability order; state probabilities
    only shrink along transitions, so the first completed answer is the
    mode.  Returns the answer and its exact probability.  Raises
    [Invalid_argument] on non-BID-shaped trees or when more than
    [max_expansions] (default 1_000_000) states are expanded. *)

val u_kranks : Db.t -> k:int -> Topk_list.t
(** U-kRanks (Soliman et al.): position [i] holds the key maximizing
    [Pr(r(t) = i)].  The same key may win several positions; later duplicate
    winners are replaced by the best not-yet-used key to return a valid
    list. *)

val expected_ranks : Db.t -> k:int -> Topk_list.t
(** Expected-rank baseline (Cormode et al.): the [k] keys with the smallest
    expected rank. *)

val expected_scores : Db.t -> k:int -> Topk_list.t
(** The [k] keys with the largest expected value contribution
    [Σ_alt p·value]. *)

val upsilon_h : Db.t -> k:int -> Topk_list.t
(** The ΥH parameterized ranking function of §5.3:
    [ΥH(t) = Σ_{i<=k} Pr(r(t) <= i) / i]; its top-k answer is an
    H_k-approximate consensus answer under the intersection metric. *)

val prf : Db.t -> w:(int -> float) -> k:int -> Topk_list.t
(** General parameterized ranking function [Υ(t) = Σ_i w(i)·Pr(r(t) = i)]
    (Li–Saha–Deshpande), with positions beyond [num_alts] weightless. *)

val upsilon_h_scores : Db.t -> k:int -> (int * float) list
(** The ΥH score of every key (used by the approximation analysis bench). *)

val global_topk_pruned : Db.t -> k:int -> Topk_list.t * int
(** {!global_topk} with upper-bound pruning in the style of the PT-k
    evaluation of Hua et al. (SIGMOD'08): keys are visited in decreasing
    order of a cheap upper bound on [Pr(r(t) <= k)]
    ([Pr(present) · min(1, reverse-Markov bound on the number of
    higher-scored present tuples)]), and the O(nk) exact computation stops
    once the bound falls below the running k-th best exact value.  Returns
    the (identical) answer and the number of exact rank-distribution
    evaluations performed (see bench E17). *)

val rank_leq_upper_bound : Db.t -> k:int -> (int * float) list
(** The pruning bound for every key (exposed for tests: it must dominate
    the exact probability). *)
