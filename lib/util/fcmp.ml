let default_eps = 1e-9

(* Exact equality first so that equal infinities compare equal; mixed
   finite/non-finite operands are never approximately equal (the relative
   scale [eps * inf] would otherwise absorb every finite value). *)
let approx ?(eps = default_eps) x y =
  x = y
  || Float.is_finite x && Float.is_finite y
     &&
     let scale = Float.max 1. (Float.max (Float.abs x) (Float.abs y)) in
     Float.abs (x -. y) <= eps *. scale

let leq ?(eps = default_eps) x y = x <= y || approx ~eps x y
let geq ?(eps = default_eps) x y = x >= y || approx ~eps x y
let lt ?(eps = default_eps) x y = x < y && not (approx ~eps x y)
let gt ?(eps = default_eps) x y = x > y && not (approx ~eps x y)

let is_probability ?(eps = default_eps) p =
  Float.is_finite p && p >= -.eps && p <= 1. +. eps

let clamp_probability p =
  if not (is_probability p) then
    invalid_arg (Printf.sprintf "clamp_probability: %g is not a probability" p);
  Float.min 1. (Float.max 0. p)

let compare_arrays ?(eps = default_eps) a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> approx ~eps x y) a b
