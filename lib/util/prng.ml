type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let splitmix64 state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let default_seed = 0x5DEECE66D

let create ?(seed = default_seed) () =
  let state = ref (Int64.of_int seed) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

let copy g = { s0 = g.s0; s1 = g.s1; s2 = g.s2; s3 = g.s3 }

let rotl x k = Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let bits64 g =
  let open Int64 in
  let result = mul (rotl (mul g.s1 5L) 7) 9L in
  let t = shift_left g.s1 17 in
  g.s2 <- logxor g.s2 g.s0;
  g.s3 <- logxor g.s3 g.s1;
  g.s1 <- logxor g.s1 g.s2;
  g.s0 <- logxor g.s0 g.s3;
  g.s2 <- logxor g.s2 t;
  g.s3 <- rotl g.s3 45;
  result

let split g =
  let state = ref (bits64 g) in
  let s0 = splitmix64 state in
  let s1 = splitmix64 state in
  let s2 = splitmix64 state in
  let s3 = splitmix64 state in
  { s0; s1; s2; s3 }

(* Top 53 bits give a uniform dyadic rational in [0,1). *)
let uniform g =
  let bits = Int64.shift_right_logical (bits64 g) 11 in
  Int64.to_float bits *. 0x1p-53

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  let mask = Int64.of_int max_int in
  let rec loop () =
    let r = Int64.to_int (Int64.logand (bits64 g) mask) in
    (* Rejection sampling to avoid modulo bias. *)
    let v = r mod bound in
    if r - v > max_int - bound + 1 then loop () else v
  in
  loop ()

let float g bound = uniform g *. bound
let bool g = Int64.logand (bits64 g) 1L = 1L
let bernoulli g p = uniform g < p

let range g lo hi =
  if hi < lo then invalid_arg "Prng.range: empty range";
  lo + int g (hi - lo + 1)

let gaussian g ~mean ~stddev =
  let rec nonzero () =
    let u = uniform g in
    if u > 0. then u else nonzero ()
  in
  let u1 = nonzero () and u2 = uniform g in
  let r = sqrt (-2. *. log u1) in
  mean +. (stddev *. r *. cos (2. *. Float.pi *. u2))

let exponential g ~rate =
  if rate <= 0. then invalid_arg "Prng.exponential: rate must be positive";
  let rec nonzero () =
    let u = uniform g in
    if u > 0. then u else nonzero ()
  in
  -.log (nonzero ()) /. rate

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose g a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int g (Array.length a))

let sample_distinct g k n =
  if k > n then invalid_arg "Prng.sample_distinct: k > n";
  (* Floyd's algorithm: O(k) expected insertions. *)
  let module S = Set.Make (Int) in
  let s = ref S.empty in
  for j = n - k to n - 1 do
    let t = int g (j + 1) in
    if S.mem t !s then s := S.add j !s else s := S.add t !s
  done;
  S.elements !s

let categorical g w =
  let total = Array.fold_left ( +. ) 0. w in
  if total <= 0. then invalid_arg "Prng.categorical: weights must have positive sum";
  let x = uniform g *. total in
  let n = Array.length w in
  let acc = ref 0. and result = ref (n - 1) and found = ref false in
  for i = 0 to n - 1 do
    if not !found then begin
      acc := !acc +. w.(i);
      if x < !acc then begin
        result := i;
        found := true
      end
    end
  done;
  !result
