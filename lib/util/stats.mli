(** Small descriptive-statistics helpers used by the benchmark harness. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}
(** Five-number-ish summary of a sample. *)

val summarize : float array -> summary
(** Summary of a non-empty sample.  [stddev] is the sample (n-1) deviation,
    0 for singletons. *)

val mean : float array -> float
(** Arithmetic mean of a non-empty sample. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0,100\]], linear interpolation.  Does not
    mutate its argument. *)

val harmonic : int -> float
(** [harmonic k] is the k-th harmonic number H_k (H_0 = 0). *)

val pp_summary : Format.formatter -> summary -> unit
(** Render as ["mean=… sd=… min=… med=… max=… (n=…)"]. *)
