(** Deterministic, splittable pseudo-random number generator.

    All randomized algorithms in this repository take an explicit generator so
    that experiments and tests are reproducible.  The implementation is
    xoshiro256** seeded with splitmix64, which is fast and has no shared
    global state. *)

type t
(** Mutable generator state. *)

val create : ?seed:int -> unit -> t
(** [create ~seed ()] builds a fresh generator.  The default seed is a fixed
    constant so that two runs of the same program agree. *)

val copy : t -> t
(** Independent copy of the current state. *)

val split : t -> t
(** [split g] derives a new generator from [g], advancing [g].  Streams of the
    parent and the child are (statistically) independent. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli g p] is [true] with probability [p]. *)

val uniform : t -> float
(** Uniform in [\[0, 1)]. *)

val range : t -> int -> int -> int
(** [range g lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val gaussian : t -> mean:float -> stddev:float -> float
(** Normal deviate via Box–Muller. *)

val exponential : t -> rate:float -> float
(** Exponential deviate with the given rate. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val sample_distinct : t -> int -> int -> int list
(** [sample_distinct g k n] draws [k] distinct integers from [\[0, n)],
    in increasing order.  Requires [k <= n]. *)

val categorical : t -> float array -> int
(** [categorical g w] draws index [i] with probability [w.(i) / sum w].
    Weights must be non-negative with a positive sum. *)
