(** Cooperative cancellation tokens with absolute deadlines.

    A token is a wall-clock deadline plus a manual cancel flag.  Long-running
    computations poll it — {!check} raises {!Expired} once the deadline has
    passed or {!cancel} was called — so a query-serving frontend can bound
    request latency without killing domains.

    {2 Ambient token}

    The serving stack installs the current request's token as the {e ambient}
    token of the evaluating domain ({!with_current}); the engine pool
    captures the ambient token at combinator submission and re-installs it
    around every chunk it executes, including chunks that migrate to worker
    domains.  Hot kernels therefore only need {!check_current} (or go through
    the pool combinators, which check once per chunk) to become cancellable.

    The ambient slot is {e per-domain} ([Domain.DLS]): a domain must evaluate
    one request at a time for the ambient token to be meaningful.  The
    scheduler in [lib/serve] runs each request on a dedicated worker domain
    for exactly this reason.

    {2 Cost}

    {!check} on {!none} (the default ambient token) is one atomic load and a
    float compare — no clock read.  Tokens with a finite deadline read the
    clock on every check; poll at chunk/iteration granularity, not per
    floating-point operation. *)

type t

exception Expired
(** Raised by {!check}/{!check_current} once the token is {!expired}.
    [Engine_api.run_result] maps it to [Error Deadline_exceeded]. *)

val none : t
(** The never-expiring token ({!cancel} on it is ignored).  This is the
    initial ambient token of every domain. *)

val make : ?deadline:float -> unit -> t
(** A fresh token expiring at absolute Unix time [deadline] (seconds, as
    [Unix.gettimeofday]; default: never). *)

val after : float -> t
(** [after s] is [make ~deadline:(now +. s) ()]. *)

val cancel : t -> unit
(** Expire the token immediately (idempotent; no-op on {!none}). *)

val deadline : t -> float
(** The absolute deadline ([infinity] when none). *)

val expired : t -> bool
(** True once cancelled or past the deadline. *)

val check : t -> unit
(** Raise {!Expired} iff {!expired}. *)

(** {1 Ambient token} *)

val current : unit -> t
(** This domain's ambient token ({!none} unless {!with_current} is active). *)

val with_current : t -> (unit -> 'a) -> 'a
(** [with_current t f] runs [f] with [t] as the ambient token, restoring the
    previous ambient token afterwards (also on exceptions). *)

val check_current : unit -> unit
(** [check (current ())] — the one-liner for hot kernel loops. *)
