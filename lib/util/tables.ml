type align = Left | Right

type t = {
  title : string option;
  headers : string list;
  aligns : align list;
  mutable rows : string list list;
}

let create ?title cols =
  { title; headers = List.map fst cols; aligns = List.map snd cols; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Tables.add_row: cell count mismatch";
  t.rows <- row :: t.rows

let add_rowf t fmt =
  Format.kasprintf
    (fun s -> add_row t (String.split_on_char '|' s |> List.map String.trim))
    fmt

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row)
    all;
  let render_row row =
    List.mapi (fun i c -> pad (List.nth t.aligns i) widths.(i) c) row
    |> String.concat "  "
  in
  let rule =
    Array.to_list widths |> List.map (fun w -> String.make w '-') |> String.concat "  "
  in
  let buf = Buffer.create 256 in
  (match t.title with
  | Some s ->
      Buffer.add_string buf s;
      Buffer.add_char buf '\n'
  | None -> ());
  Buffer.add_string buf (render_row t.headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf rule;
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()
