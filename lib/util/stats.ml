type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let mean xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.mean: empty sample";
  Array.fold_left ( +. ) 0. xs /. float_of_int n

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty sample";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    ((1. -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty sample";
  let m = mean xs in
  let var =
    if n = 1 then 0.
    else
      Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs
      /. float_of_int (n - 1)
  in
  {
    n;
    mean = m;
    stddev = sqrt var;
    min = Array.fold_left Float.min xs.(0) xs;
    max = Array.fold_left Float.max xs.(0) xs;
    median = percentile xs 50.;
  }

let harmonic k =
  let acc = ref 0. in
  for i = 1 to k do
    acc := !acc +. (1. /. float_of_int i)
  done;
  !acc

let pp_summary ppf s =
  Format.fprintf ppf "mean=%.4g sd=%.4g min=%.4g med=%.4g max=%.4g (n=%d)"
    s.mean s.stddev s.min s.median s.max s.n
