type 'a t = {
  mutable prio : float array;
  mutable data : 'a option array;
  mutable n : int;
}

let create () = { prio = Array.make 16 0.; data = Array.make 16 None; n = 0 }
let is_empty h = h.n = 0
let size h = h.n

let swap h i j =
  let p = h.prio.(i) in
  h.prio.(i) <- h.prio.(j);
  h.prio.(j) <- p;
  let d = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- d

let grow h =
  if h.n >= Array.length h.prio then begin
    let cap = 2 * Array.length h.prio in
    let prio = Array.make cap 0. and data = Array.make cap None in
    Array.blit h.prio 0 prio 0 h.n;
    Array.blit h.data 0 data 0 h.n;
    h.prio <- prio;
    h.data <- data
  end

let push h p x =
  grow h;
  h.prio.(h.n) <- p;
  h.data.(h.n) <- Some x;
  let i = ref h.n in
  h.n <- h.n + 1;
  while !i > 0 && h.prio.((!i - 1) / 2) < h.prio.(!i) do
    swap h !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

let peek_max h = if h.n = 0 then None else Some (h.prio.(0), Option.get h.data.(0))

let pop_max h =
  if h.n = 0 then None
  else begin
    let result = (h.prio.(0), Option.get h.data.(0)) in
    h.n <- h.n - 1;
    h.prio.(0) <- h.prio.(h.n);
    h.data.(0) <- h.data.(h.n);
    h.data.(h.n) <- None;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let largest = ref !i in
      if l < h.n && h.prio.(l) > h.prio.(!largest) then largest := l;
      if r < h.n && h.prio.(r) > h.prio.(!largest) then largest := r;
      if !largest <> !i then begin
        swap h !i !largest;
        i := !largest
      end
      else continue := false
    done;
    Some result
  end
