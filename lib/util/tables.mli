(** Minimal aligned ASCII table rendering for the experiment harness. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : ?title:string -> (string * align) list -> t
(** [create cols] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row; must have exactly as many cells as columns. *)

val add_rowf : t -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Append a one-cell-per-'|' row written with a format string; cells are
    split on ['|']. *)

val render : t -> string
(** Render with padded columns, a header rule, and the optional title. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)
