type t = { deadline : float; cancelled : bool Atomic.t }

exception Expired

let none = { deadline = infinity; cancelled = Atomic.make false }

let make ?(deadline = infinity) () = { deadline; cancelled = Atomic.make false }

let after s = make ~deadline:(Unix.gettimeofday () +. s) ()

(* [none] is shared process-wide; cancelling it would expire every request
   that never asked for a deadline. *)
let cancel t = if t != none then Atomic.set t.cancelled true

let deadline t = t.deadline

let expired t =
  Atomic.get t.cancelled
  || (t.deadline < infinity && Unix.gettimeofday () > t.deadline)

let check t = if expired t then raise Expired

let key = Domain.DLS.new_key (fun () -> none)

let current () = Domain.DLS.get key

let with_current t f =
  let prev = Domain.DLS.get key in
  Domain.DLS.set key t;
  Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f

let check_current () = check (Domain.DLS.get key)
