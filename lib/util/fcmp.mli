(** Tolerant floating-point comparisons.

    Probability computations combine long chains of additions and
    multiplications; exact equality is meaningless.  All tolerant helpers use
    a combined absolute/relative test: [x ~= y] iff
    [|x - y| <= eps * max (1., |x|, |y|)]. *)

val default_eps : float
(** Default tolerance, [1e-9]. *)

val approx : ?eps:float -> float -> float -> bool
(** Combined absolute/relative equality.  Equal infinities are equal; a
    finite value is never approximately equal to a non-finite one. *)

val lt : ?eps:float -> float -> float -> bool
(** [lt x y] iff [x < y] by more than the tolerance (strict, scale-aware).
    Safe with infinite operands: [lt x infinity] holds for every finite
    [x]. *)

val gt : ?eps:float -> float -> float -> bool
(** [gt x y] iff [x > y] by more than the tolerance. *)

val leq : ?eps:float -> float -> float -> bool
(** [leq x y] iff [x <= y] up to tolerance. *)

val geq : ?eps:float -> float -> float -> bool
(** [geq x y] iff [x >= y] up to tolerance. *)

val is_probability : ?eps:float -> float -> bool
(** True iff the value lies in [\[0, 1\]] up to tolerance. *)

val clamp_probability : float -> float
(** Clamp to [\[0, 1\]]; raises [Invalid_argument] if the value is further
    than {!default_eps} outside the interval or is not finite. *)

val compare_arrays : ?eps:float -> float array -> float array -> bool
(** Pointwise {!approx} on equal-length arrays. *)
