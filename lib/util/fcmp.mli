(** Tolerant floating-point comparisons.

    Probability computations combine long chains of additions and
    multiplications; exact equality is meaningless.  All tolerant helpers use
    a combined absolute/relative test: [x ~= y] iff
    [|x - y| <= eps * max (1., |x|, |y|)]. *)

val default_eps : float
(** Default tolerance, [1e-9]. *)

val approx : ?eps:float -> float -> float -> bool
(** Combined absolute/relative equality. *)

val leq : ?eps:float -> float -> float -> bool
(** [leq x y] iff [x <= y] up to tolerance. *)

val geq : ?eps:float -> float -> float -> bool
(** [geq x y] iff [x >= y] up to tolerance. *)

val is_probability : ?eps:float -> float -> bool
(** True iff the value lies in [\[0, 1\]] up to tolerance. *)

val clamp_probability : float -> float
(** Clamp to [\[0, 1\]]; raises [Invalid_argument] if the value is further
    than {!default_eps} outside the interval or is not finite. *)

val compare_arrays : ?eps:float -> float array -> float array -> bool
(** Pointwise {!approx} on equal-length arrays. *)
