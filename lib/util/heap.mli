(** Mutable binary max-heap keyed by float priorities.

    Used by best-first searches (e.g. the exact U-Top-k algorithm of
    Soliman et al., which expands partial top-k vectors in decreasing
    probability order). *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> float -> 'a -> unit
(** Insert with a priority. *)

val pop_max : 'a t -> (float * 'a) option
(** Remove and return the highest-priority element. *)

val peek_max : 'a t -> (float * 'a) option
