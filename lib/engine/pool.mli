(** A reusable OCaml 5 domain pool with deterministic parallel combinators.

    {2 Determinism guarantees}

    - {!parallel_init} and {!parallel_map} write every result into its own
      index of the output array, so the output is independent of scheduling
      and of the [jobs] setting: for a pure [f] the result is bit-identical
      to the sequential computation.
    - {!parallel_reduce} combines partial results in a fixed chunk order
      whose boundaries depend only on the input size (see {!Chunk}), so
      floating-point reductions are reproducible run-to-run and across
      [jobs] settings (for the same [chunk_size]).

    {2 Scheduling}

    A pool with [jobs = j] owns [j - 1] worker domains plus the submitting
    domain, which participates in executing chunk tasks while a combinator
    is in flight.  A pool with [jobs = 1] never spawns a domain and runs
    everything inline.  Combinators also fall back to the sequential path
    when the input is below a size [cutoff].  Nested combinator calls are
    allowed (inner calls help drain the shared queue; no deadlock).

    Worker exceptions propagate: the first exception raised by a chunk is
    re-raised in the submitting domain (with its backtrace) after the
    remaining chunks are cancelled.

    {2 Cooperative cancellation}

    Combinators capture the submitting domain's ambient
    {!Consensus_util.Deadline} token and re-install it around every chunk
    they execute — on worker domains, on the submitter, and on concurrent
    submitters helping drain the shared queue.  Each chunk checks the token
    before running, so a request whose deadline has passed (or that was
    cancelled) raises {!Consensus_util.Deadline.Expired} at the submission
    site instead of finishing its remaining chunks.  Without an ambient
    token ({!Consensus_util.Deadline.none}) the check is one atomic load. *)

type t

val create : ?metrics:Metrics.t -> ?jobs:int -> unit -> t
(** [create ~jobs ()] builds a pool with [jobs] execution slots.
    [jobs = 0] (the default) sizes the pool automatically from
    [Domain.recommended_domain_count ()].  Raises [Invalid_argument] on
    negative [jobs].  A fresh {!Metrics.t} registry is created unless one is
    supplied. *)

val jobs : t -> int
(** The resolved number of execution slots (>= 1). *)

val metrics : t -> Metrics.t
(** The pool's instrumentation registry. *)

val shutdown : t -> unit
(** Drain the queue, stop and join the worker domains.  Idempotent.
    Subsequent submissions still complete — they run inline in the calling
    domain (no workers are left to run them). *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] on a fresh pool and shuts it down
    afterwards (also on exceptions). *)

(** {1 Global pool}

    Hot paths take [?pool] arguments defaulting to a process-global pool,
    created lazily at first use and sized from
    [Domain.recommended_domain_count ()] (or {!set_global_jobs}). *)

val get_global : unit -> t
(** The global pool, created on first call. *)

val set_global_jobs : int -> unit
(** Set the size of the global pool ([0] = auto) and shut down any existing
    global pool; the next {!get_global} creates a fresh one.  Safe to call
    while other domains run combinators: a caller still holding the retired
    pool falls back to inline execution (see {!shutdown}) instead of
    raising, so results are unaffected — only the parallelism of in-flight
    work. *)

val resolve : t option -> t
(** [resolve (Some p) = p]; [resolve None = get_global ()].  The standard
    entry for [?pool] arguments. *)

val queue_pressure : unit -> float
(** Last observed value of the [engine_queue_depth] gauge — tasks waiting in
    an engine queue, last-write-wins across pools.  Only updated while the
    observability subsystem is enabled (the serve daemon's admission control
    keys off this; it always enables observability). *)

(** {1 Task submission} *)

val submit : t -> (unit -> 'a) -> 'a Task.t
(** Schedule one closure on the pool ([jobs = 1] or shut-down pool:
    executed inline before returning). *)

(** {1 Parallel combinators}

    All combinators take the work from index [0] to [n - 1].  [cutoff]
    (default [2]): inputs with fewer than [cutoff] items run sequentially.
    [chunk_size] (default {!Chunk.default_size}): indices per scheduled
    chunk.  [stage] labels the call in the pool's {!Metrics}. *)

val parallel_init :
  ?pool:t ->
  ?cutoff:int ->
  ?chunk_size:int ->
  ?stage:string ->
  int ->
  (int -> 'a) ->
  'a array
(** Parallel [Array.init].  [f] must be pure (or at least data-race free);
    it may itself call combinators on the same pool. *)

val parallel_map :
  ?pool:t ->
  ?cutoff:int ->
  ?chunk_size:int ->
  ?stage:string ->
  ('a -> 'b) ->
  'a array ->
  'b array
(** Parallel [Array.map], output index [i] holding [f a.(i)]. *)

val parallel_reduce :
  ?pool:t ->
  ?cutoff:int ->
  ?chunk_size:int ->
  ?stage:string ->
  init:'a ->
  combine:('a -> 'a -> 'a) ->
  (int -> 'a) ->
  int ->
  'a
(** [parallel_reduce ~init ~combine f n] folds [combine] over
    [f 0 .. f (n-1)] with the deterministic chunk grouping described above.
    [init] must be a neutral element of [combine] (it seeds every chunk and
    the final fold). *)
