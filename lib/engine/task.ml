type 'a state =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a t = { mutex : Mutex.t; filled : Condition.t; mutable state : 'a state }

let create () =
  { mutex = Mutex.create (); filled = Condition.create (); state = Pending }

let fill t state =
  Mutex.lock t.mutex;
  (match t.state with
  | Pending -> t.state <- state
  | _ ->
      Mutex.unlock t.mutex;
      invalid_arg "Task.run: task already filled");
  Condition.broadcast t.filled;
  Mutex.unlock t.mutex

let run t f =
  match f () with
  | v -> fill t (Done v)
  | exception e -> fill t (Failed (e, Printexc.get_raw_backtrace ()))

let await t =
  Mutex.lock t.mutex;
  while match t.state with Pending -> true | _ -> false do
    Condition.wait t.filled t.mutex
  done;
  let state = t.state in
  Mutex.unlock t.mutex;
  match state with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let is_done t =
  Mutex.lock t.mutex;
  let r = match t.state with Pending -> false | _ -> true in
  Mutex.unlock t.mutex;
  r
