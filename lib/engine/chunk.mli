(** Deterministic chunking of index ranges.

    Chunk boundaries are a function of the input size only — never of the
    number of workers — so that chunked reductions combine partial results in
    the same grouping whatever the parallelism, keeping floating-point
    results bit-identical across [jobs] settings and run-to-run. *)

val ranges : ?chunk_size:int -> int -> (int * int) array
(** [ranges n] splits [0, n) into half-open [(lo, hi)] ranges of
    [chunk_size] indices (last chunk possibly shorter), in increasing order.
    [ranges 0 = [||]].  The default [chunk_size] is {!default_size}. *)

val default_size : int
(** Default indices per chunk: 1.  The engine's dominant workloads (rank
    distributions, pair probabilities, matrix rows) are heavy per item, so
    one item per chunk maximizes load balance; call sites with cheap items
    pass a larger [chunk_size]. *)

val count : ?chunk_size:int -> int -> int
(** Number of chunks [ranges] would produce. *)
