module Obs = Consensus_obs.Obs
module Context = Consensus_obs.Context
module Deadline = Consensus_util.Deadline

type t = {
  jobs : int;
  metrics : Metrics.t;
  mutex : Mutex.t;
  work_available : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let now () = Unix.gettimeofday ()

(* Observability hooks, all gated on [Obs.enabled] (one branch when off).
   The queue-depth gauge is updated under [pool.mutex], so concurrent pools
   last-write-wins — it is a pressure indicator, not an exact ledger. *)
let queue_depth =
  Obs.Gauge.make ~help:"Tasks waiting in the engine pool queue" "engine_queue_depth"

let queue_wait =
  Obs.Histogram.make
    ~help:"Seconds between chunk submission and execution start"
    "engine_queue_wait_seconds"

let note_queue_depth pool =
  if Obs.enabled () then
    Obs.Gauge.set queue_depth (float_of_int (Queue.length pool.queue))

let queue_pressure () = Obs.Gauge.value queue_depth

(* Live worker-domain count across every pool in the process, exported as
   the [ocaml_domains_active] gauge.  Refreshed by a scrape hook rather
   than on create/shutdown so the gauge is correct even for pools built
   while the metrics subsystem was disabled. *)
let live_workers = Atomic.make 0

let domains_active =
  Obs.Gauge.make ~help:"Live engine worker domains across all pools"
    "ocaml_domains_active"

let () =
  Obs.on_scrape (fun () ->
      Obs.Gauge.set domains_active (float_of_int (Atomic.get live_workers)))

(* Workers drain the queue even after [closed] is set, so every submitted
   task completes before [shutdown] returns. *)
let worker_loop pool =
  let rec loop () =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue && not pool.closed do
      Condition.wait pool.work_available pool.mutex
    done;
    if Queue.is_empty pool.queue then Mutex.unlock pool.mutex
    else begin
      let task = Queue.pop pool.queue in
      note_queue_depth pool;
      Mutex.unlock pool.mutex;
      (* A raising task must not kill the worker: the tasks queued behind it
         would never be popped and the queue-depth gauge would stay pinned
         above zero.  Exception propagation is owned by the task wrappers
         (Task.run and run_chunks capture and re-raise at the submission
         site); anything escaping here has nowhere better to go. *)
      (try task () with _ -> ());
      loop ()
    end
  in
  loop ()

let create ?metrics ?(jobs = 0) () =
  if jobs < 0 then invalid_arg "Pool.create: jobs must be >= 0";
  let jobs = if jobs = 0 then Domain.recommended_domain_count () else jobs in
  let pool =
    {
      jobs;
      metrics = (match metrics with Some m -> m | None -> Metrics.create ());
      mutex = Mutex.create ();
      work_available = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [];
    }
  in
  pool.workers <-
    List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  ignore (Atomic.fetch_and_add live_workers (List.length pool.workers));
  pool

let jobs pool = pool.jobs
let metrics pool = pool.metrics

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.closed <- true;
  let workers = pool.workers in
  pool.workers <- [];
  Condition.broadcast pool.work_available;
  Mutex.unlock pool.mutex;
  List.iter Domain.join workers;
  ignore (Atomic.fetch_and_add live_workers (-List.length workers))

let with_pool ?jobs f =
  let pool = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

(* ---------- global pool ---------- *)

let global_mutex = Mutex.create ()
let global_pool = ref None
let global_jobs = ref 0

let get_global () =
  Mutex.lock global_mutex;
  let pool =
    match !global_pool with
    | Some p when not p.closed -> p
    | _ ->
        let p = create ~jobs:!global_jobs () in
        global_pool := Some p;
        p
  in
  Mutex.unlock global_mutex;
  pool

let set_global_jobs jobs =
  if jobs < 0 then invalid_arg "Pool.set_global_jobs: jobs must be >= 0";
  Mutex.lock global_mutex;
  let previous = !global_pool in
  global_pool := None;
  global_jobs := jobs;
  Mutex.unlock global_mutex;
  Option.iter shutdown previous

let resolve = function Some pool -> pool | None -> get_global ()

(* ---------- submission ---------- *)

(* A closed pool accepts work but runs it inline in the calling domain: a
   caller that resolved the global pool just before a concurrent
   [set_global_jobs] retired it must still make progress (the workers are
   gone, so queueing would hang; raising would turn a benign race into a
   crash). *)
let enqueue pool tasks =
  Mutex.lock pool.mutex;
  if pool.closed then begin
    Mutex.unlock pool.mutex;
    List.iter (fun t -> t ()) tasks
  end
  else begin
    List.iter (fun t -> Queue.push t pool.queue) tasks;
    note_queue_depth pool;
    Condition.broadcast pool.work_available;
    Mutex.unlock pool.mutex
  end

let submit pool f =
  let task = Task.create () in
  if pool.jobs = 1 then Task.run task f
  else enqueue pool [ (fun () -> Task.run task f) ];
  task

let try_pop pool =
  Mutex.lock pool.mutex;
  let task = if Queue.is_empty pool.queue then None else Some (Queue.pop pool.queue) in
  if task <> None then note_queue_depth pool;
  Mutex.unlock pool.mutex;
  task

(* Run the chunk bodies to completion on the pool: enqueue all of them, let
   the calling domain help drain the (shared) queue, then wait for the last
   chunk.  The first chunk exception cancels the not-yet-started chunks and
   is re-raised here. *)
let run_chunks pool ~stage ~tasks bodies =
  let t0 = now () in
  (* The submitting request's cancellation token travels with its chunks:
     whichever domain executes a chunk (worker, submitter, or a concurrent
     submitter helping drain the shared queue) re-installs the token as its
     ambient token for the chunk's duration and checks it first, so an
     expired request fails fast instead of finishing its remaining chunks.
     The trace context travels the same way, so spans recorded inside a
     chunk attribute to the request that submitted it — including [None],
     which must displace the executing domain's own context. *)
  let ctx = Deadline.current () in
  let octx = Context.current () in
  let nchunks = Array.length bodies in
  let latch = Mutex.create () in
  let all_done = Condition.create () in
  let remaining = ref nchunks in
  let failure = ref None in
  let caller = Domain.self () in
  let by_caller = Atomic.make 0 in
  let run_body body =
    (* Chunk-level observability: how long the chunk sat in the queue, and a
       span covering its execution, labelled with the stage. *)
    if Obs.enabled () then begin
      Obs.Histogram.observe queue_wait (now () -. t0);
      Obs.with_span
        ~attrs:(fun () -> [ ("stage", Obs.Str stage) ])
        "engine.chunk" body
    end
    else body ()
  in
  let wrap body () =
    (match !failure with
    | Some _ -> () (* fail fast: skip bodies scheduled after a failure *)
    | None -> (
        try
          Context.with_current_opt octx (fun () ->
              Deadline.with_current ctx (fun () ->
                  Deadline.check ctx;
                  run_body body))
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          Mutex.lock latch;
          if !failure = None then failure := Some (e, bt);
          Mutex.unlock latch));
    if Domain.self () = caller then Atomic.incr by_caller;
    Mutex.lock latch;
    decr remaining;
    if !remaining = 0 then Condition.broadcast all_done;
    Mutex.unlock latch
  in
  enqueue pool (Array.to_list (Array.map wrap bodies));
  (* Help execute queued chunks (ours or a concurrent call's) until the
     queue is empty, then wait for our stragglers. *)
  let rec help () =
    match try_pop pool with
    | Some task ->
        task ();
        help ()
    | None -> ()
  in
  help ();
  Mutex.lock latch;
  while !remaining > 0 do
    Condition.wait all_done latch
  done;
  Mutex.unlock latch;
  let by_caller = Atomic.get by_caller in
  Metrics.record pool.metrics ~stage ~tasks ~chunks:nchunks ~seq:false
    ~by_caller ~by_worker:(nchunks - by_caller) ~wall:(now () -. t0);
  match !failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

(* ---------- combinators ---------- *)

let sequential pool ~stage ~tasks bodies =
  let t0 = now () in
  let ctx = Deadline.current () in
  let finish () =
    Metrics.record pool.metrics ~stage ~tasks ~chunks:(Array.length bodies)
      ~seq:true ~by_caller:(Array.length bodies) ~by_worker:0
      ~wall:(now () -. t0)
  in
  (try
     Array.iter
       (fun body ->
         Deadline.check ctx;
         body ())
       bodies
   with e ->
     finish ();
     raise e);
  finish ()

let run_bodies pool ~cutoff ~stage ~tasks bodies =
  let seq = pool.jobs = 1 || tasks < cutoff || Array.length bodies <= 1 in
  Obs.with_span
    ~attrs:(fun () ->
      [
        ("stage", Obs.Str stage);
        ("tasks", Obs.Int tasks);
        ("chunks", Obs.Int (Array.length bodies));
        ("jobs", Obs.Int pool.jobs);
        ("sequential", Obs.Bool seq);
      ])
    "engine.parallel"
    (fun () ->
      if seq then sequential pool ~stage ~tasks bodies
      else run_chunks pool ~stage ~tasks bodies)

let parallel_init ?pool ?(cutoff = 2) ?chunk_size ?(stage = "init") n f =
  if n < 0 then invalid_arg "Pool.parallel_init: negative size";
  let pool = resolve pool in
  if n = 0 then [||]
  else begin
    let out = Array.make n (f 0) in
    let bodies =
      Chunk.ranges ?chunk_size (n - 1)
      |> Array.map (fun (lo, hi) () ->
             for i = lo + 1 to hi do
               out.(i) <- f i
             done)
    in
    run_bodies pool ~cutoff ~stage ~tasks:n bodies;
    out
  end

let parallel_map ?pool ?cutoff ?chunk_size ?(stage = "map") f a =
  parallel_init ?pool ?cutoff ?chunk_size ~stage (Array.length a) (fun i ->
      f a.(i))

let parallel_reduce ?pool ?(cutoff = 2) ?chunk_size ?(stage = "reduce") ~init
    ~combine f n =
  if n < 0 then invalid_arg "Pool.parallel_reduce: negative size";
  let pool = resolve pool in
  if n = 0 then init
  else begin
    (* Chunk boundaries depend on [n] and [chunk_size] only, and partial
       results are combined in chunk order: the float result is identical
       whatever [jobs] is. *)
    let ranges = Chunk.ranges ?chunk_size n in
    let accs = Array.make (Array.length ranges) init in
    let bodies =
      Array.mapi
        (fun c (lo, hi) () ->
          let acc = ref init in
          for i = lo to hi - 1 do
            acc := combine !acc (f i)
          done;
          accs.(c) <- !acc)
        ranges
    in
    run_bodies pool ~cutoff ~stage ~tasks:n bodies;
    Array.fold_left combine init accs
  end
