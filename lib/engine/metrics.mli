(** Lightweight per-stage instrumentation of the parallel engine.

    Every parallel combinator records one event per call under a {e stage}
    label (e.g. ["rank_table"], ["kendall_joints"]).  A stage accumulates the
    number of calls, elementary tasks, chunks, the wall-clock time spent, and
    where the chunks ran (on the submitting domain or on a pool worker) — a
    cheap proxy for queue pressure.

    A registry is thread-safe: worker domains and the submitting domain may
    record concurrently. *)

type stage = {
  name : string;
  mutable calls : int;  (** parallel-combinator invocations *)
  mutable tasks : int;  (** elementary work items (array cells, keys, …) *)
  mutable chunks : int;  (** scheduled chunk tasks *)
  mutable seq_calls : int;
      (** calls served by the sequential fallback (jobs = 1 or small input) *)
  mutable by_caller : int;  (** chunks executed inline by the submitting domain *)
  mutable by_worker : int;  (** chunks executed by pool worker domains *)
  mutable wall : float;  (** total wall-clock seconds across calls *)
}

type t
(** A mutable metrics registry. *)

val create : unit -> t

val record :
  t ->
  stage:string ->
  tasks:int ->
  chunks:int ->
  seq:bool ->
  by_caller:int ->
  by_worker:int ->
  wall:float ->
  unit
(** Accumulate one combinator call into the stage's counters. *)

val snapshot : t -> stage list
(** Copies of all stages, sorted by name. *)

val reset : t -> unit

val total_wall : t -> float
(** Sum of [wall] over all stages. *)

val pp : Format.formatter -> t -> unit
(** Human-readable table of the registry. *)

val to_json : t -> string
(** JSON object keyed by stage name, e.g.
    [{"rank_table":{"calls":1,"tasks":200,...}}].  Hand-rolled (no external
    JSON dependency). *)
