(** Single-assignment futures used by {!Pool.submit}.

    A task is filled exactly once — with a value or an exception — by
    whichever domain executes it; any number of domains may {!await} it.
    Exceptions raised by the producing computation are re-raised (with their
    original backtrace) in every awaiting domain. *)

type 'a t

val create : unit -> 'a t
(** A fresh pending task. *)

val run : 'a t -> (unit -> 'a) -> unit
(** [run t f] executes [f ()] and fills [t] with its result or its
    exception.  Must be called at most once per task. *)

val await : 'a t -> 'a
(** Block until the task is filled; return the value or re-raise the
    producer's exception. *)

val is_done : 'a t -> bool
(** Non-blocking: has the task been filled (with a value or an exception)? *)
