type stage = {
  name : string;
  mutable calls : int;
  mutable tasks : int;
  mutable chunks : int;
  mutable seq_calls : int;
  mutable by_caller : int;
  mutable by_worker : int;
  mutable wall : float;
}

type t = { mutex : Mutex.t; stages : (string, stage) Hashtbl.t }

let create () = { mutex = Mutex.create (); stages = Hashtbl.create 16 }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let record t ~stage ~tasks ~chunks ~seq ~by_caller ~by_worker ~wall =
  with_lock t (fun () ->
      let s =
        match Hashtbl.find_opt t.stages stage with
        | Some s -> s
        | None ->
            let s =
              {
                name = stage;
                calls = 0;
                tasks = 0;
                chunks = 0;
                seq_calls = 0;
                by_caller = 0;
                by_worker = 0;
                wall = 0.;
              }
            in
            Hashtbl.add t.stages stage s;
            s
      in
      s.calls <- s.calls + 1;
      s.tasks <- s.tasks + tasks;
      s.chunks <- s.chunks + chunks;
      if seq then s.seq_calls <- s.seq_calls + 1;
      s.by_caller <- s.by_caller + by_caller;
      s.by_worker <- s.by_worker + by_worker;
      s.wall <- s.wall +. wall)

let snapshot t =
  with_lock t (fun () ->
      Hashtbl.fold (fun _ s acc -> { s with name = s.name } :: acc) t.stages [])
  |> List.sort (fun a b -> compare a.name b.name)

let reset t = with_lock t (fun () -> Hashtbl.reset t.stages)

let total_wall t =
  snapshot t |> List.fold_left (fun acc s -> acc +. s.wall) 0.

let pp ppf t =
  let stages = snapshot t in
  if stages = [] then Format.fprintf ppf "engine: no parallel stages recorded@."
  else begin
    Format.fprintf ppf "%-24s %6s %8s %7s %5s %9s %9s %10s@." "stage" "calls"
      "tasks" "chunks" "seq" "by-caller" "by-worker" "wall (ms)";
    List.iter
      (fun s ->
        Format.fprintf ppf "%-24s %6d %8d %7d %5d %9d %9d %10.2f@." s.name
          s.calls s.tasks s.chunks s.seq_calls s.by_caller s.by_worker
          (s.wall *. 1000.))
      stages
  end

(* Emitted through the shared [Consensus_obs.Json] builder: stage names are
   caller-supplied strings and must be escaped properly (a '"' in a stage
   label would otherwise produce invalid JSON). *)
let to_json t =
  let module J = Consensus_obs.Json in
  let stage_json s =
    J.Obj
      [
        ("calls", J.Int s.calls);
        ("tasks", J.Int s.tasks);
        ("chunks", J.Int s.chunks);
        ("seq_calls", J.Int s.seq_calls);
        ("by_caller", J.Int s.by_caller);
        ("by_worker", J.Int s.by_worker);
        ("wall_ms", J.Float (s.wall *. 1000.));
      ]
  in
  J.to_string (J.Obj (snapshot t |> List.map (fun s -> (s.name, stage_json s))))
