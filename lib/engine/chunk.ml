let default_size = 1

let count ?(chunk_size = default_size) n =
  if chunk_size <= 0 then invalid_arg "Chunk.count: chunk_size must be positive";
  if n <= 0 then 0 else ((n - 1) / chunk_size) + 1

let ranges ?(chunk_size = default_size) n =
  if chunk_size <= 0 then invalid_arg "Chunk.ranges: chunk_size must be positive";
  let c = count ~chunk_size n in
  Array.init c (fun i -> (i * chunk_size, min n ((i + 1) * chunk_size)))
